// Fleet driver for the structure-of-arrays cohort day kernel.
//
// Where the per-device loop (DeviceInstance) simulates one device to
// completion before touching the next, the cohort runner advances a whole
// chunk of devices one day at a time through platform::CohortDayState — so
// segment tables, the detection-gate window and the policy objects are
// shared across the cohort, and every device's classification windows for a
// day land in one cross-device FixedBatch::classify call.
//
// Bit-exactness contract: per device, identical bits to DeviceInstance on
// the same scenario. The pieces that make that hold:
//   * the cohort kernel is bit-identical to the scalar fast path per lane
//     (tests/platform/test_cohort_day.cpp),
//   * the outcome fold and the pick-drawing RNG consumption are the exact
//     functions DeviceInstance uses (device_instance.cpp),
//   * each device's RNG draw order is preserved — lux factor for day d, then
//     that day's picks, then day d+1 — because days are staged in that order
//     per lane, and lanes' streams are independent,
//   * batch classification is bit-exact per row regardless of what else
//     shares the batch, so pooling rows across devices changes nothing.
//
// One runner per worker thread (its buffers and caches are reused across
// chunks and are not thread-safe).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/app.hpp"
#include "fleet/device_instance.hpp"
#include "fleet/fleet_stats.hpp"
#include "fleet/scenario.hpp"
#include "nn/batch.hpp"
#include "platform/cohort_day.hpp"

namespace iw::fleet {

class CohortRunner {
 public:
  /// `app` may be null (energy/duty-cycle simulation only); when set it must
  /// outlive the runner. `batch` optionally supplies the worker's shared
  /// batch workspace (lazily built when null and batching is on).
  explicit CohortRunner(const core::StressDetectionApp* app = nullptr,
                        nn::FixedBatch* batch = nullptr,
                        bool batched_classification = true);

  /// Simulates every scenario for its full day count (all lanes advance in
  /// lockstep, day by day) and adds each device's outcome to `stats` in
  /// scenario order.
  void run(std::span<const Scenario> scenarios, FleetStats& stats);

 private:
  const platform::DetectionPolicy* policy_for(const Scenario& scenario);
  void classify_staged();

  const core::StressDetectionApp* app_;
  nn::FixedBatch* batch_ = nullptr;
  std::unique_ptr<nn::FixedBatch> owned_batch_;
  bool use_batching_ = true;

  /// Every device uses the same calibrated physics, so sharing one instance
  /// is bit-identical to each device fitting its own.
  hv::DualSourceHarvester harvester_ = hv::DualSourceHarvester::calibrated();
  platform::CohortDayState cohort_;

  /// Scheduling policies, pooled by (kind, period): make_policy derives its
  /// parameters from nothing else, and the policies are stateless const
  /// objects, so lanes sharing one is bit-identical to each owning one.
  struct PooledPolicy {
    PolicyKind kind;
    double period_s;
    std::unique_ptr<platform::DetectionPolicy> policy;
  };
  std::vector<PooledPolicy> policies_;

  std::array<std::vector<std::size_t>, 3> windows_by_level_;

  // Per-lane state, parallel to the scenario span; buffers reused across runs.
  std::vector<Rng> rngs_;
  std::vector<hv::DayProfile> base_profiles_;
  std::vector<hv::DayProfile> scaled_profiles_;
  std::vector<platform::DeviceConfig> configs_;
  std::vector<platform::DaySimulationResult> results_;
  std::vector<const platform::DetectionPolicy*> lane_policy_;
  std::vector<DeviceOutcome> outcomes_;
  std::vector<double> socs_;
  std::vector<platform::CohortMember> members_;
  std::vector<std::size_t> active_;

  // Cross-device per-day classification staging.
  std::vector<std::size_t> lane_picks_;
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> pick_lane_;
  std::vector<const float*> rows_;
  std::vector<std::size_t> labels_;
};

}  // namespace iw::fleet
