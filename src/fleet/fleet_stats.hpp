// Mergeable fleet-wide aggregate statistics.
//
// Each worker shard accumulates the outcomes of the devices it simulated into
// its own FleetStats; the engine then merges shards in a fixed order. Every
// derived quantity (percentiles, fractions, totals) is computed from the
// per-device outcome table sorted by device id, so the aggregate — down to
// the last bit of every double — is independent of how devices were
// distributed across threads.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_instance.hpp"

namespace iw::fleet {

class FleetStats {
 public:
  /// Turns per-device row retention off (or back on). Must be called before
  /// any device is added. With retention off, add() folds each outcome into
  /// running counters and drops the row — O(1) memory for any fleet size —
  /// at the price of the row-derived outputs: percentiles read as zero,
  /// outcome_table() is unavailable, and serialize() emits only the summary
  /// line. With retention on (the default) every output is byte-identical
  /// to a FleetStats that never heard of the toggle.
  void set_record_outcomes(bool record);
  bool record_outcomes() const { return record_outcomes_; }

  /// Records one finished device.
  void add(const DeviceOutcome& outcome);

  /// Folds another shard's devices into this one. A retaining aggregate can
  /// only merge shards that also retained their rows.
  void merge(const FleetStats& other);

  std::size_t device_count() const { return counters_.devices; }

  /// Per-device outcome table, sorted by device id. Requires row retention.
  std::vector<DeviceOutcome> outcome_table() const;

  struct Percentiles {
    double p5 = 0.0, p25 = 0.0, p50 = 0.0, p75 = 0.0, p95 = 0.0;
  };

  struct Summary {
    std::size_t devices = 0;
    std::uint64_t detections_attempted = 0;
    std::uint64_t detections_completed = 0;
    std::uint64_t detections_skipped = 0;
    double harvested_j = 0.0;
    double consumed_j = 0.0;
    double fraction_self_sustaining = 0.0;
    std::array<std::uint64_t, 3> class_counts{};
    std::uint64_t classified = 0;
    Percentiles final_soc;
    Percentiles min_soc;
    Percentiles detections_per_min;
    Percentiles intake_uw;  // mean harvest intake in microwatts
    /// Device counts per wearer profile / policy kind.
    std::array<std::size_t, kNumWearerProfiles> per_profile{};
    std::array<std::size_t, kNumPolicyKinds> per_policy{};
  };

  /// Fleet-wide aggregate, deterministic for a given device set.
  Summary summarize() const;

  /// Canonical text form (summary plus the full outcome table). Two fleet
  /// runs agree bit-for-bit iff their serializations are byte-identical —
  /// this is what the thread-count-invariance tests compare.
  std::string serialize() const;

 private:
  /// Row-free running totals, maintained in add/merge order regardless of the
  /// retention mode. With retention on, summaries still come from the sorted
  /// table (bit-for-bit the historical output); the counters only feed
  /// device_count() and the retention-off summary, whose double totals sum in
  /// accumulation order instead.
  struct Counters {
    std::size_t devices = 0;
    std::uint64_t detections_attempted = 0;
    std::uint64_t detections_completed = 0;
    std::uint64_t detections_skipped = 0;
    double harvested_j = 0.0;
    double consumed_j = 0.0;
    std::size_t self_sustaining = 0;
    std::array<std::uint64_t, 3> class_counts{};
    std::uint64_t classified = 0;
    std::array<std::size_t, kNumWearerProfiles> per_profile{};
    std::array<std::size_t, kNumPolicyKinds> per_policy{};
  };

  bool record_outcomes_ = true;
  Counters counters_;
  std::vector<DeviceOutcome> outcomes_;
};

}  // namespace iw::fleet
