// Longitudinal fleet service: checkpointable multi-month populations.
//
// Scales the fleet from "N devices x 1 day, fully materialized" to "millions
// of devices x months" by combining three pieces:
//
//   * Sharded generation — the population [first_device, first_device +
//     num_devices) is cut into contiguous shards; each shard's scenarios are
//     re-sampled on demand from Rng::substream(fleet_seed, device_id), so any
//     shard is reproducible in isolation and no per-device state exists
//     outside the shard currently being simulated. Peak memory is O(shard),
//     never O(population).
//   * Multi-day lockstep advance — a shard's devices step day-by-day through
//     the cohort day kernel (platform::CohortDayState), so the per-shard
//     setup (scenario sampling, profile build, policy pooling, gate/shape
//     caches) amortizes over every simulated day, not just one.
//   * Streaming aggregation — results fold into LongitudinalStats (fixed-bin
//     histograms + exact integer counters per day x archetype), whose merge
//     is exactly commutative: aggregates are byte-identical across shard
//     order, thread count, and checkpoint/resume splits.
//
// Checkpointing cuts the run at a day boundary: every device's cross-day
// state (SoC bits, RNG cursor, outcome accumulators — see DeviceCheckpoint)
// plus the aggregates so far go into one shard-addressable file. Resuming
// replays the exact setup an uninterrupted run would perform on that day,
// so checkpoint -> resume is bit-identical to never having stopped.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/app.hpp"
#include "fleet/device_instance.hpp"
#include "fleet/fleet_stats.hpp"
#include "fleet/longitudinal/checkpoint.hpp"
#include "fleet/longitudinal/long_stats.hpp"
#include "fleet/scenario.hpp"
#include "nn/batch.hpp"
#include "platform/cohort_day.hpp"

namespace iw::fleet {

struct LongitudinalConfig {
  /// Population: devices [first_device, first_device + num_devices), each
  /// sampled from (fleet_seed, device_id). first_device lets a sub-population
  /// be simulated in isolation — the same devices produce the same bits they
  /// would inside the full population (the shard-isolation property).
  std::uint64_t num_devices = 1000;
  std::uint64_t first_device = 0;
  std::uint64_t fleet_seed = 0x1f2e2020ULL;
  /// Simulated days per device.
  int days = 30;
  /// Devices simulated together per shard — the memory knob. Also the unit
  /// of work claimed by worker threads.
  std::size_t shard_size = 4096;
  /// Worker threads; 1 runs inline on the calling thread.
  int threads = 1;
  /// SoC histogram resolution of the streamed aggregates.
  int soc_bins = LongitudinalStats::kDefaultSocBins;
  /// Optional shared stress-detection app (const access only; must outlive
  /// the run). When set, completed detections classify through its deployed
  /// fixed-point network, batched per cohort-day.
  const core::StressDetectionApp* app = nullptr;
  bool batched_classification = true;
  /// Retain one DeviceOutcome row per device in LongitudinalResult::outcomes
  /// (O(population) memory — for oracle comparisons and small runs only; the
  /// streamed LongitudinalStats is the scalable product).
  bool record_outcomes = false;
  /// Non-empty: resume from this checkpoint file. Its header must match the
  /// population spec above (seed, range, days, soc_bins) exactly.
  std::string resume_path;
  /// Non-empty: write a checkpoint at the end of day `checkpoint_day` and
  /// stop there (resume later to continue). Requires 0 < checkpoint_day <=
  /// days, and checkpoint_day greater than a resumed file's day.
  std::string checkpoint_path;
  int checkpoint_day = 0;
};

struct LongitudinalResult {
  LongitudinalStats stats;
  /// Per-device rows; empty unless LongitudinalConfig::record_outcomes.
  FleetStats outcomes;
  std::size_t devices = 0;
  /// Days already banked by the resumed checkpoint (0 for a fresh run) and
  /// the day this run stopped at (== days, or checkpoint_day).
  int start_day = 0;
  int end_day = 0;
  int threads_used = 1;
  double wall_s = 0.0;
  /// Device-days simulated by *this* run (excludes resumed days) per second.
  double device_days_per_sec = 0.0;
};

/// Multi-day lockstep simulator for one shard of explicit scenarios: the
/// building block under LongitudinalRunner, public so tests and tools can
/// drive crafted populations (e.g. battery-empty/full edge states) through
/// the exact production day loop. Per device, outcomes are bit-identical to
/// the fleet engine's cohort path on the same scenarios.
///
/// One simulator per worker thread; buffers and caches are reused across
/// begin()/resume() cycles and are not thread-safe.
class ShardSimulator {
 public:
  /// `app` may be null (energy/duty-cycle simulation only); when set it must
  /// outlive the simulator. `batch` optionally supplies the worker's shared
  /// batch workspace (lazily built when null and batching is on).
  explicit ShardSimulator(const core::StressDetectionApp* app = nullptr,
                          nn::FixedBatch* batch = nullptr,
                          bool batched_classification = true);

  /// Binds a fresh shard at day 0.
  void begin(std::span<const Scenario> scenarios);

  /// Binds a shard restored from checkpoints (parallel to `scenarios`; device
  /// ids, RNG seeds and day counts are validated against the scenarios).
  void resume(std::span<const Scenario> scenarios,
              std::span<const DeviceCheckpoint> checkpoints);

  /// Advances every unfinished lane one day; when `sink` is non-null, records
  /// each advanced device's end-of-day state into it. Returns false once all
  /// lanes have reached their scenario's day count.
  bool step_day(LongitudinalStats* sink = nullptr);

  /// Days completed (the lockstep clock; lanes with fewer scenario days stop
  /// early and keep their last state).
  int day() const { return day_; }
  int max_days() const { return max_days_; }
  bool done() const { return day_ >= max_days_; }
  std::size_t size() const { return scenarios_.size(); }

  /// Running outcome accumulators, parallel to the bound scenarios.
  std::span<const DeviceOutcome> outcomes() const;

  /// Snapshots every lane's cross-day state at the current day boundary.
  void save_checkpoints(std::vector<DeviceCheckpoint>& out) const;

 private:
  void setup(std::span<const Scenario> scenarios);
  const platform::DetectionPolicy* policy_for(const Scenario& scenario);
  void classify_staged();

  const core::StressDetectionApp* app_;
  nn::FixedBatch* batch_ = nullptr;
  std::unique_ptr<nn::FixedBatch> owned_batch_;
  bool use_batching_ = true;

  /// Every device uses the same calibrated physics, so sharing one instance
  /// is bit-identical to each device fitting its own.
  hv::DualSourceHarvester harvester_ = hv::DualSourceHarvester::calibrated();
  platform::CohortDayState cohort_;

  /// Scheduling policies pooled by (kind, period) — stateless const objects,
  /// so lanes sharing one is bit-identical to each owning one.
  struct PooledPolicy {
    PolicyKind kind;
    double period_s;
    std::unique_ptr<platform::DetectionPolicy> policy;
  };
  std::vector<PooledPolicy> policies_;

  std::array<std::vector<std::size_t>, 3> windows_by_level_;

  // Per-lane state, parallel to scenarios_; buffers reused across shards.
  std::vector<Scenario> scenarios_;
  std::vector<Rng> rngs_;
  std::vector<hv::DayProfile> base_profiles_;
  std::vector<hv::DayProfile> scaled_profiles_;
  std::vector<platform::DeviceConfig> configs_;
  std::vector<platform::DaySimulationResult> results_;
  std::vector<const platform::DetectionPolicy*> lane_policy_;
  std::vector<DeviceOutcome> outcomes_;
  std::vector<double> socs_;
  std::vector<platform::CohortMember> members_;
  std::vector<std::size_t> active_;

  // Cross-device per-day classification staging.
  std::vector<std::size_t> lane_picks_;
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> pick_lane_;
  std::vector<const float*> rows_;
  std::vector<std::size_t> labels_;

  int day_ = 0;
  int max_days_ = 0;
};

class LongitudinalRunner {
 public:
  explicit LongitudinalRunner(LongitudinalConfig config);

  const LongitudinalConfig& config() const { return config_; }

  /// Simulates the population (or the resumed remainder) and reduces the
  /// streamed aggregates. Thread-safe to call from one thread at a time.
  LongitudinalResult run() const;

 private:
  LongitudinalConfig config_;
};

}  // namespace iw::fleet
