// Streaming, mergeable population aggregates over simulated time.
//
// FleetStats retains one DeviceOutcome per device — O(devices) memory and
// fine for a thousand devices, fatal for millions. LongitudinalStats is the
// longitudinal fleet's replacement: fixed-bin SoC histograms and exact
// integer counters per (simulated day, wearer archetype), so memory is
// O(days x archetypes x bins) no matter how many devices stream through it.
//
// Merge determinism: every field is an integer (counts, histogram bins, and
// energy totals quantized to a fixed 2^-16 J grid at record time), so merging
// is exact integer addition — commutative and associative down to the last
// bit. Two runs that record the same device-days produce byte-identical
// aggregates regardless of shard order, thread count, or how the population
// was split into checkpoint/resume legs. Continuous queries (quantiles,
// fractions) are pure functions of those integers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "fleet/device_instance.hpp"

namespace iw::fleet {

class LongitudinalStats {
 public:
  /// 128 bins over SoC [0, 1]: ~0.8 %-SoC quantile resolution.
  static constexpr int kDefaultSocBins = 128;

  /// Empty shell (days() == 0); merging anything into it adopts that shape.
  LongitudinalStats() = default;
  explicit LongitudinalStats(int days, int soc_bins = kDefaultSocBins);

  int days() const { return days_; }
  int soc_bins() const { return soc_bins_; }

  /// Deterministic energy quantization: joules onto a 2^-16 J (~15 uJ) grid.
  /// Each device-day's contribution is quantized identically no matter where
  /// or when it is recorded, which is what keeps energy totals mergeable in
  /// any order.
  static std::int64_t quantize_j(double j);
  static double dequantize_j(std::int64_t q);

  /// Records one device's state at the end of simulated day `day` (1-based),
  /// from its running outcome accumulator after that day was folded in.
  /// Deltas (that day's detections/energy) are derived at query time from
  /// consecutive days' cumulative counters.
  void record_device_day(int day, const DeviceOutcome& outcome);

  /// Exact integer fold of another aggregate (commutative, associative).
  void merge(const LongitudinalStats& other);

  /// Cumulative population counters at the end of `day` (summed over devices
  /// recorded for that day). Energy fields are on the quantized grid.
  struct DayCounters {
    std::uint64_t devices = 0;
    std::uint64_t self_sustaining = 0;
    std::uint64_t detections_attempted = 0;
    std::uint64_t detections_completed = 0;
    std::uint64_t detections_skipped = 0;
    std::uint64_t classified = 0;
    std::int64_t harvested_qj = 0;
    std::int64_t consumed_qj = 0;
  };
  DayCounters day_counters(int day) const;
  DayCounters day_counters(int day, WearerProfile profile) const;

  /// Fraction of devices whose run was still self-sustaining at day N.
  double fraction_self_sustaining(int day) const;

  /// End-of-day SoC quantile (q in [0, 1]) from the day's histogram: the
  /// midpoint of the bin holding the floor(q * (n - 1))-th order statistic.
  /// Resolution is 1 / soc_bins; the estimate is a pure function of the bin
  /// counts, hence merge-order independent.
  double soc_quantile(int day, double q) const;
  double soc_quantile(int day, double q, WearerProfile profile) const;

  /// Canonical text form: shape, then per-day counters, quantiles, and a
  /// per-(day, archetype) digest of the raw bins. Two aggregates agree
  /// bit-for-bit iff their serializations are byte-identical — what the
  /// shard-order / thread-count / checkpoint-split tests compare.
  std::string serialize() const;

  /// Byte-stable binary form (checkpoint files). The size depends only on
  /// (days, soc_bins).
  void save(ByteWriter& out) const;
  static LongitudinalStats load(ByteReader& in);

 private:
  std::size_t cell_index(int day, int profile) const;
  std::size_t bin_base(int day, int profile) const;
  int bin_of(double soc) const;

  int days_ = 0;
  int soc_bins_ = 0;
  /// Per (day, archetype) exact counters; day-major, archetype-minor.
  std::vector<DayCounters> cells_;
  /// Per (day, archetype) SoC histograms, flattened day-major.
  std::vector<std::uint64_t> bins_;
};

}  // namespace iw::fleet
