#include "fleet/longitudinal/long_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace iw::fleet {
namespace {

constexpr std::uint32_t kMagic = 0x4c475354u;  // "LGST"
constexpr std::uint32_t kVersion = 1;

/// FNV-1a over a span of u64 values (fed byte-wise, little-endian) — the
/// serialize() digest that pins every histogram bin without printing all of
/// them.
std::uint64_t fnv1a_u64(const std::uint64_t* values, std::size_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = values[i];
    for (int b = 0; b < 8; ++b) {
      h ^= v & 0xffu;
      h *= 0x100000001b3ULL;
      v >>= 8;
    }
  }
  return h;
}

}  // namespace

LongitudinalStats::LongitudinalStats(int days, int soc_bins)
    : days_(days), soc_bins_(soc_bins) {
  ensure(days >= 1, "LongitudinalStats: need at least one day");
  ensure(soc_bins >= 2, "LongitudinalStats: need at least two SoC bins");
  const std::size_t cells =
      static_cast<std::size_t>(days) * static_cast<std::size_t>(kNumWearerProfiles);
  cells_.assign(cells, DayCounters{});
  bins_.assign(cells * static_cast<std::size_t>(soc_bins), 0);
}

std::int64_t LongitudinalStats::quantize_j(double j) {
  return std::llround(j * 65536.0);
}

double LongitudinalStats::dequantize_j(std::int64_t q) {
  return static_cast<double>(q) * 0x1.0p-16;
}

std::size_t LongitudinalStats::cell_index(int day, int profile) const {
  ensure(day >= 1 && day <= days_, "LongitudinalStats: day out of range");
  ensure(profile >= 0 && profile < kNumWearerProfiles,
         "LongitudinalStats: profile out of range");
  return static_cast<std::size_t>(day - 1) *
             static_cast<std::size_t>(kNumWearerProfiles) +
         static_cast<std::size_t>(profile);
}

std::size_t LongitudinalStats::bin_base(int day, int profile) const {
  return cell_index(day, profile) * static_cast<std::size_t>(soc_bins_);
}

int LongitudinalStats::bin_of(double soc) const {
  // Clamp first: carry-over SoC can legitimately sit a rounding ulp outside
  // [0, 1] (see LipoBattery::restore_soc), and those states belong in the
  // edge bins, not out of range.
  if (!(soc > 0.0)) return 0;  // also catches NaN deterministically
  if (soc >= 1.0) return soc_bins_ - 1;
  const int bin = static_cast<int>(soc * static_cast<double>(soc_bins_));
  return std::min(bin, soc_bins_ - 1);
}

void LongitudinalStats::record_device_day(int day, const DeviceOutcome& outcome) {
  const std::size_t cell = cell_index(day, static_cast<int>(outcome.profile));
  DayCounters& c = cells_[cell];
  c.devices += 1;
  c.self_sustaining += outcome.self_sustaining ? 1 : 0;
  c.detections_attempted += outcome.detections_attempted;
  c.detections_completed += outcome.detections_completed;
  c.detections_skipped += outcome.detections_skipped;
  c.classified += outcome.classified;
  c.harvested_qj += quantize_j(outcome.harvested_j);
  c.consumed_qj += quantize_j(outcome.consumed_j);
  bins_[cell * static_cast<std::size_t>(soc_bins_) +
        static_cast<std::size_t>(bin_of(outcome.final_soc))] += 1;
}

void LongitudinalStats::merge(const LongitudinalStats& other) {
  if (other.days_ == 0) return;
  if (days_ == 0) {
    *this = other;
    return;
  }
  ensure(days_ == other.days_ && soc_bins_ == other.soc_bins_,
         "LongitudinalStats::merge: shape mismatch");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    DayCounters& c = cells_[i];
    const DayCounters& o = other.cells_[i];
    c.devices += o.devices;
    c.self_sustaining += o.self_sustaining;
    c.detections_attempted += o.detections_attempted;
    c.detections_completed += o.detections_completed;
    c.detections_skipped += o.detections_skipped;
    c.classified += o.classified;
    c.harvested_qj += o.harvested_qj;
    c.consumed_qj += o.consumed_qj;
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
}

LongitudinalStats::DayCounters LongitudinalStats::day_counters(int day) const {
  DayCounters sum;
  for (int p = 0; p < kNumWearerProfiles; ++p) {
    const DayCounters& c = cells_[cell_index(day, p)];
    sum.devices += c.devices;
    sum.self_sustaining += c.self_sustaining;
    sum.detections_attempted += c.detections_attempted;
    sum.detections_completed += c.detections_completed;
    sum.detections_skipped += c.detections_skipped;
    sum.classified += c.classified;
    sum.harvested_qj += c.harvested_qj;
    sum.consumed_qj += c.consumed_qj;
  }
  return sum;
}

LongitudinalStats::DayCounters LongitudinalStats::day_counters(
    int day, WearerProfile profile) const {
  return cells_[cell_index(day, static_cast<int>(profile))];
}

double LongitudinalStats::fraction_self_sustaining(int day) const {
  const DayCounters c = day_counters(day);
  if (c.devices == 0) return 0.0;
  return static_cast<double>(c.self_sustaining) / static_cast<double>(c.devices);
}

namespace {

double quantile_of_bins(const std::uint64_t* bins, int num_bins, double q) {
  std::uint64_t n = 0;
  for (int b = 0; b < num_bins; ++b) n += bins[b];
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::floor(q * static_cast<double>(n - 1)));
  std::uint64_t cum = 0;
  for (int b = 0; b < num_bins; ++b) {
    cum += bins[b];
    if (cum > rank) {
      return (static_cast<double>(b) + 0.5) / static_cast<double>(num_bins);
    }
  }
  return 1.0;  // unreachable: cum == n > rank by the loop's end
}

}  // namespace

double LongitudinalStats::soc_quantile(int day, double q) const {
  // Sum the archetype histograms for the day (they share the bin grid).
  std::vector<std::uint64_t> merged(static_cast<std::size_t>(soc_bins_), 0);
  for (int p = 0; p < kNumWearerProfiles; ++p) {
    const std::size_t base = bin_base(day, p);
    for (int b = 0; b < soc_bins_; ++b) {
      merged[static_cast<std::size_t>(b)] += bins_[base + static_cast<std::size_t>(b)];
    }
  }
  return quantile_of_bins(merged.data(), soc_bins_, q);
}

double LongitudinalStats::soc_quantile(int day, double q,
                                       WearerProfile profile) const {
  const std::size_t base = bin_base(day, static_cast<int>(profile));
  return quantile_of_bins(bins_.data() + base, soc_bins_, q);
}

std::string LongitudinalStats::serialize() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "longstats days=%d bins=%d\n", days_, soc_bins_);
  out += buf;
  for (int day = 1; day <= days_; ++day) {
    const DayCounters c = day_counters(day);
    std::snprintf(buf, sizeof buf,
                  "day %d dev=%llu ss=%llu att=%llu ok=%llu skip=%llu cls=%llu "
                  "harv_q=%lld cons_q=%lld p50=%.17g p99=%.17g",
                  day, static_cast<unsigned long long>(c.devices),
                  static_cast<unsigned long long>(c.self_sustaining),
                  static_cast<unsigned long long>(c.detections_attempted),
                  static_cast<unsigned long long>(c.detections_completed),
                  static_cast<unsigned long long>(c.detections_skipped),
                  static_cast<unsigned long long>(c.classified),
                  static_cast<long long>(c.harvested_qj),
                  static_cast<long long>(c.consumed_qj),
                  soc_quantile(day, 0.5), soc_quantile(day, 0.99));
    out += buf;
    // Per-archetype digest: counters hash would hide which field moved, so
    // print the cell counters raw and digest only the bins.
    for (int p = 0; p < kNumWearerProfiles; ++p) {
      const DayCounters& cc = cells_[cell_index(day, p)];
      const std::uint64_t digest = fnv1a_u64(
          bins_.data() + bin_base(day, p), static_cast<std::size_t>(soc_bins_));
      std::snprintf(buf, sizeof buf, " | p%d:%llu,%llu,%llu,%llu,%llu,%llu,%lld,%lld,%016llx",
                    p, static_cast<unsigned long long>(cc.devices),
                    static_cast<unsigned long long>(cc.self_sustaining),
                    static_cast<unsigned long long>(cc.detections_attempted),
                    static_cast<unsigned long long>(cc.detections_completed),
                    static_cast<unsigned long long>(cc.detections_skipped),
                    static_cast<unsigned long long>(cc.classified),
                    static_cast<long long>(cc.harvested_qj),
                    static_cast<long long>(cc.consumed_qj),
                    static_cast<unsigned long long>(digest));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void LongitudinalStats::save(ByteWriter& out) const {
  out.u32(kMagic);
  out.u32(kVersion);
  out.u32(static_cast<std::uint32_t>(days_));
  out.u32(static_cast<std::uint32_t>(soc_bins_));
  for (const DayCounters& c : cells_) {
    out.u64(c.devices);
    out.u64(c.self_sustaining);
    out.u64(c.detections_attempted);
    out.u64(c.detections_completed);
    out.u64(c.detections_skipped);
    out.u64(c.classified);
    out.i64(c.harvested_qj);
    out.i64(c.consumed_qj);
  }
  for (const std::uint64_t b : bins_) out.u64(b);
}

LongitudinalStats LongitudinalStats::load(ByteReader& in) {
  ensure(in.u32() == kMagic, "LongitudinalStats::load: bad magic");
  ensure(in.u32() == kVersion, "LongitudinalStats::load: unsupported version");
  const std::uint32_t days = in.u32();
  const std::uint32_t soc_bins = in.u32();
  ensure(days >= 1 && days <= 1u << 20, "LongitudinalStats::load: bad day count");
  ensure(soc_bins >= 2 && soc_bins <= 1u << 16,
         "LongitudinalStats::load: bad bin count");
  LongitudinalStats stats(static_cast<int>(days), static_cast<int>(soc_bins));
  for (DayCounters& c : stats.cells_) {
    c.devices = in.u64();
    c.self_sustaining = in.u64();
    c.detections_attempted = in.u64();
    c.detections_completed = in.u64();
    c.detections_skipped = in.u64();
    c.classified = in.u64();
    c.harvested_qj = in.i64();
    c.consumed_qj = in.i64();
  }
  for (std::uint64_t& b : stats.bins_) b = in.u64();
  return stats;
}

}  // namespace iw::fleet
