#include "fleet/longitudinal/checkpoint.hpp"

#include "common/error.hpp"

namespace iw::fleet {
namespace {

// File magic: "IWLCKPT1" as raw bytes, followed by a format version.
constexpr std::uint8_t kMagic[8] = {'I', 'W', 'L', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_device_checkpoint(const DeviceCheckpoint& cp, ByteWriter& out) {
  const std::size_t start = out.size();
  out.f64(cp.soc);
  out.u32(cp.days_run);
  for (const std::uint64_t s : cp.rng.state) out.u64(s);
  out.u64(cp.rng.seed);
  out.f64(cp.rng.cached_normal);
  out.u8(cp.rng.has_cached_normal ? 1 : 0);
  const DeviceOutcome& o = cp.outcome;
  out.u64(o.device_id);
  out.u8(static_cast<std::uint8_t>(o.profile));
  out.u8(static_cast<std::uint8_t>(o.policy));
  out.u32(static_cast<std::uint32_t>(o.days_run));
  out.u64(o.detections_attempted);
  out.u64(o.detections_completed);
  out.u64(o.detections_skipped);
  out.f64(o.harvested_j);
  out.f64(o.consumed_j);
  out.f64(o.initial_soc);
  out.f64(o.final_soc);
  out.f64(o.min_soc);
  out.f64(o.detections_per_min);
  out.f64(o.mean_intake_w);
  out.u8(o.self_sustaining ? 1 : 0);
  for (const std::uint64_t c : o.class_counts) out.u64(c);
  out.u64(o.classified);
  ensure(out.size() - start == kDeviceCheckpointBytes,
         "save_device_checkpoint: record size drifted from the declared layout");
}

DeviceCheckpoint load_device_checkpoint(ByteReader& in) {
  DeviceCheckpoint cp;
  cp.soc = in.f64();
  cp.days_run = in.u32();
  for (std::uint64_t& s : cp.rng.state) s = in.u64();
  cp.rng.seed = in.u64();
  cp.rng.cached_normal = in.f64();
  cp.rng.has_cached_normal = in.u8() != 0;
  DeviceOutcome& o = cp.outcome;
  o.device_id = in.u64();
  const std::uint8_t profile = in.u8();
  const std::uint8_t policy = in.u8();
  ensure(profile < kNumWearerProfiles, "load_device_checkpoint: bad profile");
  ensure(policy < kNumPolicyKinds, "load_device_checkpoint: bad policy");
  o.profile = static_cast<WearerProfile>(profile);
  o.policy = static_cast<PolicyKind>(policy);
  o.days_run = static_cast<int>(in.u32());
  o.detections_attempted = in.u64();
  o.detections_completed = in.u64();
  o.detections_skipped = in.u64();
  o.harvested_j = in.f64();
  o.consumed_j = in.f64();
  o.initial_soc = in.f64();
  o.final_soc = in.f64();
  o.min_soc = in.f64();
  o.detections_per_min = in.f64();
  o.mean_intake_w = in.f64();
  o.self_sustaining = in.u8() != 0;
  for (std::uint64_t& c : o.class_counts) c = in.u64();
  o.classified = in.u64();
  return cp;
}

void save_checkpoint_header(const CheckpointHeader& header, ByteWriter& out) {
  const std::size_t start = out.size();
  out.bytes(kMagic, sizeof kMagic);
  out.u32(kVersion);
  out.u64(header.fleet_seed);
  out.u64(header.first_device);
  out.u64(header.num_devices);
  out.u32(header.days_total);
  out.u32(header.day);
  out.u32(header.soc_bins);
  out.u32(static_cast<std::uint32_t>(kDeviceCheckpointBytes));
  out.u64(header.stats_bytes);
  ensure(out.size() - start == kCheckpointHeaderBytes,
         "save_checkpoint_header: header size drifted from the declared layout");
}

CheckpointHeader load_checkpoint_header(ByteReader& in) {
  std::uint8_t magic[8];
  in.bytes(magic, sizeof magic);
  for (std::size_t i = 0; i < sizeof magic; ++i) {
    ensure(magic[i] == kMagic[i], "checkpoint: bad magic (not a fleet checkpoint)");
  }
  ensure(in.u32() == kVersion, "checkpoint: unsupported format version");
  CheckpointHeader header;
  header.fleet_seed = in.u64();
  header.first_device = in.u64();
  header.num_devices = in.u64();
  header.days_total = in.u32();
  header.day = in.u32();
  header.soc_bins = in.u32();
  ensure(in.u32() == kDeviceCheckpointBytes,
         "checkpoint: record size mismatch (incompatible writer)");
  header.stats_bytes = in.u64();
  return header;
}

}  // namespace iw::fleet
