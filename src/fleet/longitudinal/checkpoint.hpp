// Compact, byte-stable per-device checkpoints for longitudinal fleet runs.
//
// A device's cross-day state at a day boundary is tiny: the battery SoC bits
// carried into the next day, the RNG cursor (which also carries a split
// Box-Muller pair — see RngSnapshot), and the running outcome accumulators
// (detection counters, energy totals, SoC extremes, and the app-window
// classification counts). Everything else — scenario, day profile, policy,
// detection gate, intake smoother — is a pure function of (fleet seed,
// device id) and is rebuilt on resume exactly as an uninterrupted run would
// rebuild it at that day boundary, so checkpoint -> resume is bit-identical
// to never having stopped.
//
// Records serialize to a fixed kDeviceCheckpointBytes little-endian layout,
// which makes a population checkpoint file shard-addressable: any contiguous
// shard of devices can be restored by seeking straight to its records, so
// resuming keeps memory O(active shard), never O(population).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "fleet/device_instance.hpp"

namespace iw::fleet {

/// Cross-day state of one device at a day boundary.
struct DeviceCheckpoint {
  /// Battery SoC carried into the next day — exact bits of the previous
  /// day's final_soc (can sit a rounding ulp outside [0, 1], and must
  /// round-trip exactly; see LipoBattery::restore_soc).
  double soc = 0.5;
  /// Simulated days completed for this device.
  std::uint32_t days_run = 0;
  /// Draw cursor of the device's day-to-day stream (lux factors + window
  /// picks), including the cached Box-Muller variate.
  RngSnapshot rng;
  /// Running accumulators, including the device id (which resume validates
  /// against the re-sampled scenario).
  DeviceOutcome outcome;
};

/// Fixed serialized size of one DeviceCheckpoint record.
inline constexpr std::size_t kDeviceCheckpointBytes = 188;

void save_device_checkpoint(const DeviceCheckpoint& cp, ByteWriter& out);
DeviceCheckpoint load_device_checkpoint(ByteReader& in);

/// Population checkpoint file header. The file layout is:
///   [header: kCheckpointHeaderBytes]
///   [LongitudinalStats blob: stats_bytes  — aggregates for days 1..day]
///   [num_devices x kDeviceCheckpointBytes  — records in device-id order]
/// so device i's record lives at a computable offset.
struct CheckpointHeader {
  std::uint64_t fleet_seed = 0;
  std::uint64_t first_device = 0;
  std::uint64_t num_devices = 0;
  std::uint32_t days_total = 0;
  /// Days completed at save time (the resume point).
  std::uint32_t day = 0;
  std::uint32_t soc_bins = 0;
  /// Size of the LongitudinalStats blob that follows the header.
  std::uint64_t stats_bytes = 0;
};

inline constexpr std::size_t kCheckpointHeaderBytes = 60;

void save_checkpoint_header(const CheckpointHeader& header, ByteWriter& out);
CheckpointHeader load_checkpoint_header(ByteReader& in);

}  // namespace iw::fleet
