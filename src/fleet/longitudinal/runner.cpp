#include "fleet/longitudinal/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "nn/network.hpp"
#include "platform/detection_cost.hpp"
#include "platform/scheduler.hpp"

namespace iw::fleet {

// ---------------------------------------------------------------------------
// ShardSimulator
//
// The day loop is the fleet engine's cohort path (fleet/cohort_runner.cpp)
// re-timed for longitudinal use: identical per-lane setup, identical RNG draw
// order (lux factor for day d, then day d's window picks, then day d+1), and
// the same shared helpers (accumulate_day_outcome, draw_day_picks, the
// cohort day kernel), so per device the bits match the fleet engine on the
// same scenarios. What changes is control: days are advanced one step_day()
// at a time so the runner can cut (checkpoint) or splice (resume) the run at
// any day boundary, and each advanced day can stream into LongitudinalStats.
// ---------------------------------------------------------------------------

ShardSimulator::ShardSimulator(const core::StressDetectionApp* app,
                               nn::FixedBatch* batch, bool batched_classification)
    : app_(app), batch_(batch), use_batching_(batched_classification) {
  if (app_ != nullptr) build_windows_by_level(*app_, windows_by_level_);
}

const platform::DetectionPolicy* ShardSimulator::policy_for(
    const Scenario& scenario) {
  // Fixed-rate devices run the kernel's plain periodic stream, exactly like
  // the fleet engine's cohort path.
  if (scenario.policy == PolicyKind::kFixedRate) return nullptr;
  for (const PooledPolicy& p : policies_) {
    if (p.kind == scenario.policy && p.period_s == scenario.detection_period_s) {
      return p.policy.get();
    }
  }
  policies_.push_back(PooledPolicy{scenario.policy, scenario.detection_period_s,
                                   make_policy(scenario)});
  return policies_.back().policy.get();
}

void ShardSimulator::setup(std::span<const Scenario> scenarios) {
  const std::size_t n = scenarios.size();
  ensure(n > 0, "ShardSimulator: need at least one scenario");
  scenarios_.assign(scenarios.begin(), scenarios.end());
  rngs_.clear();
  base_profiles_.resize(std::max(base_profiles_.size(), n));
  scaled_profiles_.resize(std::max(scaled_profiles_.size(), n));
  configs_.resize(std::max(configs_.size(), n));
  results_.resize(std::max(results_.size(), n));
  lane_policy_.resize(std::max(lane_policy_.size(), n));
  outcomes_.resize(std::max(outcomes_.size(), n));
  socs_.resize(std::max(socs_.size(), n));
  cohort_.reserve_lanes(n);

  day_ = 0;
  max_days_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Scenario& s = scenarios_[i];
    ensure(s.days >= 1, "ShardSimulator: scenario needs at least one day");
    max_days_ = std::max(max_days_, s.days);
    rngs_.emplace_back(s.rng_seed);
    build_day_profile_into(s, base_profiles_[i]);
    platform::DeviceConfig& config = configs_[i];
    config = platform::DeviceConfig{};
    config.detection = platform::make_detection_cost({});
    config.detection_period_s = s.detection_period_s;
    config.initial_soc = s.initial_soc;
    lane_policy_[i] = policy_for(s);
    DeviceOutcome& outcome = outcomes_[i];
    outcome = DeviceOutcome{};
    outcome.device_id = s.device_id;
    outcome.profile = s.profile;
    outcome.policy = s.policy;
    outcome.initial_soc = s.initial_soc;
    outcome.final_soc = s.initial_soc;
    socs_[i] = s.initial_soc;
  }
}

void ShardSimulator::begin(std::span<const Scenario> scenarios) {
  setup(scenarios);
}

void ShardSimulator::resume(std::span<const Scenario> scenarios,
                            std::span<const DeviceCheckpoint> checkpoints) {
  setup(scenarios);
  ensure(checkpoints.size() == scenarios_.size(),
         "ShardSimulator::resume: checkpoint/scenario count mismatch");
  int resumed_day = 0;
  for (const DeviceCheckpoint& cp : checkpoints) {
    resumed_day = std::max(resumed_day, static_cast<int>(cp.days_run));
  }
  ensure(resumed_day <= max_days_,
         "ShardSimulator::resume: checkpoint is past the scenario horizon");
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    const DeviceCheckpoint& cp = checkpoints[i];
    const Scenario& s = scenarios_[i];
    ensure(cp.outcome.device_id == s.device_id,
           "ShardSimulator::resume: checkpoint is for a different device");
    ensure(cp.rng.seed == s.rng_seed,
           "ShardSimulator::resume: checkpoint RNG does not match the scenario");
    // A lane is either at the shard clock or was already done when saved.
    ensure(static_cast<int>(cp.days_run) == std::min(resumed_day, s.days),
           "ShardSimulator::resume: inconsistent per-device day counts");
    socs_[i] = cp.soc;
    rngs_[i] = Rng::from_snapshot(cp.rng);
    outcomes_[i] = cp.outcome;
  }
  day_ = resumed_day;
}

bool ShardSimulator::step_day(LongitudinalStats* sink) {
  if (day_ >= max_days_) return false;
  const int day = day_ + 1;
  const std::size_t n = scenarios_.size();
  members_.clear();
  active_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (day > scenarios_[i].days) continue;
    // Day-to-day weather/behaviour variation, from this device's own stream —
    // drawn in the same per-device order as the fleet engine.
    const double lux_factor =
        std::exp(rngs_[i].normal(0.0, scenarios_[i].lux_sigma_day));
    platform::scale_profile_lux_into(base_profiles_[i], lux_factor,
                                     scaled_profiles_[i]);
    configs_[i].initial_soc = socs_[i];
    members_.push_back(platform::CohortMember{&configs_[i], &harvester_,
                                              &scaled_profiles_[i],
                                              lane_policy_[i], &results_[i]});
    active_.push_back(i);
  }
  cohort_.run_day(members_);

  picks_.clear();
  pick_lane_.clear();
  for (const std::size_t i : active_) {
    const platform::DaySimulationResult& result = results_[i];
    socs_[i] = result.final_soc;
    accumulate_day_outcome(outcomes_[i], result, day);
    if (app_ != nullptr) {
      draw_day_picks(rngs_[i], scenarios_[i], windows_by_level_,
                     result.detections_completed, lane_picks_);
      for (const std::size_t pick : lane_picks_) {
        picks_.push_back(pick);
        pick_lane_.push_back(i);
      }
    }
  }
  classify_staged();

  if (sink != nullptr) {
    // Stream after classification so the day's app-window counts are in.
    for (const std::size_t i : active_) sink->record_device_day(day, outcomes_[i]);
  }
  day_ = day;
  return day_ < max_days_;
}

void ShardSimulator::classify_staged() {
  if (picks_.empty()) return;
  const nn::Dataset& test = app_->test_set();
  if (use_batching_) {
    if (batch_ == nullptr) {
      owned_batch_ = std::make_unique<nn::FixedBatch>(app_->quantized());
      batch_ = owned_batch_.get();
    }
    // One batched call covering every cohort device's windows for the day —
    // bit-exact per row, so pooling rows across devices changes nothing.
    rows_.clear();
    for (const std::size_t pick : picks_) rows_.push_back(test.inputs[pick].data());
    labels_.resize(picks_.size());
    batch_->classify(rows_, labels_);
    for (std::size_t j = 0; j < picks_.size(); ++j) {
      DeviceOutcome& outcome = outcomes_[pick_lane_[j]];
      ++outcome.class_counts[std::min<std::size_t>(labels_[j], 2)];
      ++outcome.classified;
    }
  } else {
    for (std::size_t j = 0; j < picks_.size(); ++j) {
      const std::size_t predicted = app_->quantized().classify(test.inputs[picks_[j]]);
      DeviceOutcome& outcome = outcomes_[pick_lane_[j]];
      ++outcome.class_counts[std::min<std::size_t>(predicted, 2)];
      ++outcome.classified;
    }
  }
}

std::span<const DeviceOutcome> ShardSimulator::outcomes() const {
  return std::span<const DeviceOutcome>(outcomes_.data(), scenarios_.size());
}

void ShardSimulator::save_checkpoints(std::vector<DeviceCheckpoint>& out) const {
  out.clear();
  out.reserve(scenarios_.size());
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    DeviceCheckpoint cp;
    cp.soc = socs_[i];
    cp.days_run = static_cast<std::uint32_t>(std::min(day_, scenarios_[i].days));
    cp.rng = rngs_[i].snapshot();
    cp.outcome = outcomes_[i];
    out.push_back(cp);
  }
}

// ---------------------------------------------------------------------------
// LongitudinalRunner
// ---------------------------------------------------------------------------

namespace {

/// RAII FILE handle (workers each own their read handle; the save handle is
/// shared behind a mutex).
struct File {
  std::FILE* f = nullptr;
  explicit File(const char* path, const char* mode) : f(std::fopen(path, mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void seek_to(std::FILE* f, std::uint64_t offset) {
  ensure(std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0,
         "checkpoint file: seek failed");
}

/// Serialized LongitudinalStats size for a shape — fixed given (days, bins),
/// which is what makes the checkpoint's device table offset computable
/// before any stats exist.
std::uint64_t stats_blob_bytes(int days, int soc_bins) {
  ByteWriter probe;
  LongitudinalStats(days, soc_bins).save(probe);
  return probe.size();
}

}  // namespace

LongitudinalRunner::LongitudinalRunner(LongitudinalConfig config)
    : config_(std::move(config)) {
  ensure(config_.num_devices > 0, "LongitudinalRunner: need at least one device");
  ensure(config_.days >= 1, "LongitudinalRunner: need at least one day");
  ensure(config_.shard_size > 0, "LongitudinalRunner: shard size must be positive");
  ensure(config_.threads >= 1, "LongitudinalRunner: need at least one thread");
  ensure(config_.soc_bins >= 2, "LongitudinalRunner: need at least two SoC bins");
  if (!config_.checkpoint_path.empty()) {
    ensure(config_.checkpoint_day >= 1 && config_.checkpoint_day <= config_.days,
           "LongitudinalRunner: checkpoint_day must be in [1, days]");
  } else {
    ensure(config_.checkpoint_day == 0,
           "LongitudinalRunner: checkpoint_day needs a checkpoint_path");
  }
}

LongitudinalResult LongitudinalRunner::run() const {
  const LongitudinalConfig& cfg = config_;

  // --- Resume header + banked aggregates -----------------------------------
  int start_day = 0;
  LongitudinalStats banked(cfg.days, cfg.soc_bins);
  std::uint64_t resume_table_off = 0;
  const bool resuming = !cfg.resume_path.empty();
  if (resuming) {
    File in(cfg.resume_path.c_str(), "rb");
    ensure(in.f != nullptr, "LongitudinalRunner: cannot open resume checkpoint");
    std::vector<std::uint8_t> head(kCheckpointHeaderBytes);
    ensure(std::fread(head.data(), 1, head.size(), in.f) == head.size(),
           "LongitudinalRunner: truncated checkpoint header");
    ByteReader head_reader(head);
    const CheckpointHeader header = load_checkpoint_header(head_reader);
    ensure(header.fleet_seed == cfg.fleet_seed &&
               header.first_device == cfg.first_device &&
               header.num_devices == cfg.num_devices,
           "LongitudinalRunner: checkpoint is for a different population");
    ensure(header.days_total == static_cast<std::uint32_t>(cfg.days) &&
               header.soc_bins == static_cast<std::uint32_t>(cfg.soc_bins),
           "LongitudinalRunner: checkpoint shape does not match the config");
    std::vector<std::uint8_t> blob(header.stats_bytes);
    ensure(std::fread(blob.data(), 1, blob.size(), in.f) == blob.size(),
           "LongitudinalRunner: truncated checkpoint aggregates");
    ByteReader blob_reader(blob);
    banked = LongitudinalStats::load(blob_reader);
    ensure(banked.days() == cfg.days && banked.soc_bins() == cfg.soc_bins,
           "LongitudinalRunner: checkpoint aggregates shape mismatch");
    start_day = static_cast<int>(header.day);
    resume_table_off = kCheckpointHeaderBytes + header.stats_bytes;
  }

  const int stop_day = cfg.checkpoint_day > 0 ? cfg.checkpoint_day : cfg.days;
  ensure(start_day < stop_day,
         "LongitudinalRunner: nothing to simulate (resume day >= stop day)");

  // --- Checkpoint output file ----------------------------------------------
  const bool saving = !cfg.checkpoint_path.empty();
  std::uint64_t save_table_off = 0;
  std::unique_ptr<File> save_file;
  std::mutex save_mutex;
  if (saving) {
    save_table_off =
        kCheckpointHeaderBytes + stats_blob_bytes(cfg.days, cfg.soc_bins);
    save_file = std::make_unique<File>(cfg.checkpoint_path.c_str(), "wb");
    ensure(save_file->f != nullptr,
           "LongitudinalRunner: cannot create checkpoint file");
  }

  // --- Sharded run ----------------------------------------------------------
  const std::uint64_t n = cfg.num_devices;
  const std::uint64_t shard = cfg.shard_size;
  const std::uint64_t num_shards = (n + shard - 1) / shard;
  const int threads = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cfg.threads), num_shards));

  // Worker-local streamed aggregates: merged after the join. The merge is
  // exact integer addition, so the reduction is byte-identical no matter how
  // shards were distributed across workers or in what order they finished.
  std::vector<LongitudinalStats> worker_stats;
  worker_stats.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) worker_stats.emplace_back(cfg.days, cfg.soc_bins);

  // Per-shard outcome rows (only populated under record_outcomes), merged in
  // shard order — the fleet engine's deterministic-reduction pattern.
  std::vector<FleetStats> outcome_shards(
      cfg.record_outcomes ? static_cast<std::size_t>(num_shards) : 0);

  std::atomic<std::uint64_t> next_shard{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&](int worker_id) {
    try {
      std::unique_ptr<nn::FixedBatch> batch;
      if (cfg.app != nullptr && cfg.batched_classification) {
        batch = std::make_unique<nn::FixedBatch>(cfg.app->quantized());
      }
      ShardSimulator sim(cfg.app, batch.get(), cfg.batched_classification);
      LongitudinalStats& local = worker_stats[static_cast<std::size_t>(worker_id)];

      std::unique_ptr<File> resume_file;
      if (resuming) {
        resume_file = std::make_unique<File>(cfg.resume_path.c_str(), "rb");
        ensure(resume_file->f != nullptr,
               "LongitudinalRunner: cannot reopen resume checkpoint");
      }

      std::vector<Scenario> scenarios;
      std::vector<DeviceCheckpoint> checkpoints;
      std::vector<std::uint8_t> record_buf;
      ByteWriter record_writer;
      scenarios.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(shard, n)));

      while (true) {
        const std::uint64_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
        if (s >= num_shards || failed.load(std::memory_order_relaxed)) break;
        const std::uint64_t begin = cfg.first_device + s * shard;
        const std::uint64_t end =
            std::min(cfg.first_device + n, begin + shard);
        const std::size_t count = static_cast<std::size_t>(end - begin);

        // Shard generation: re-sampled from the substream, never stored.
        scenarios.clear();
        for (std::uint64_t id = begin; id < end; ++id) {
          Scenario scenario = sample_scenario(cfg.fleet_seed, id);
          scenario.days = cfg.days;
          scenarios.push_back(scenario);
        }

        if (resuming) {
          const std::uint64_t off =
              resume_table_off +
              (begin - cfg.first_device) * kDeviceCheckpointBytes;
          record_buf.resize(count * kDeviceCheckpointBytes);
          seek_to(resume_file->f, off);
          ensure(std::fread(record_buf.data(), 1, record_buf.size(),
                            resume_file->f) == record_buf.size(),
                 "LongitudinalRunner: truncated checkpoint records");
          ByteReader reader(record_buf);
          checkpoints.clear();
          checkpoints.reserve(count);
          for (std::size_t i = 0; i < count; ++i) {
            checkpoints.push_back(load_device_checkpoint(reader));
          }
          sim.resume(scenarios, checkpoints);
        } else {
          sim.begin(scenarios);
        }

        for (int d = start_day; d < stop_day; ++d) sim.step_day(&local);

        if (saving) {
          sim.save_checkpoints(checkpoints);
          record_writer.clear();
          for (const DeviceCheckpoint& cp : checkpoints) {
            save_device_checkpoint(cp, record_writer);
          }
          const std::uint64_t off =
              save_table_off +
              (begin - cfg.first_device) * kDeviceCheckpointBytes;
          std::lock_guard<std::mutex> lock(save_mutex);
          seek_to(save_file->f, off);
          ensure(std::fwrite(record_writer.data().data(), 1, record_writer.size(),
                             save_file->f) == record_writer.size(),
                 "LongitudinalRunner: checkpoint record write failed");
        }

        if (cfg.record_outcomes) {
          FleetStats& rows = outcome_shards[static_cast<std::size_t>(s)];
          for (const DeviceOutcome& outcome : sim.outcomes()) rows.add(outcome);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker, i);
    for (std::thread& t : pool) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);

  LongitudinalResult result;
  result.stats = std::move(banked);
  for (const LongitudinalStats& local : worker_stats) result.stats.merge(local);

  if (saving) {
    CheckpointHeader header;
    header.fleet_seed = cfg.fleet_seed;
    header.first_device = cfg.first_device;
    header.num_devices = cfg.num_devices;
    header.days_total = static_cast<std::uint32_t>(cfg.days);
    header.day = static_cast<std::uint32_t>(stop_day);
    header.soc_bins = static_cast<std::uint32_t>(cfg.soc_bins);
    ByteWriter head;
    ByteWriter blob;
    result.stats.save(blob);
    header.stats_bytes = blob.size();
    save_checkpoint_header(header, head);
    ensure(kCheckpointHeaderBytes + blob.size() == save_table_off,
           "LongitudinalRunner: checkpoint header size drifted");
    seek_to(save_file->f, 0);
    ensure(std::fwrite(head.data().data(), 1, head.size(), save_file->f) ==
               head.size(),
           "LongitudinalRunner: checkpoint header write failed");
    ensure(std::fwrite(blob.data().data(), 1, blob.size(), save_file->f) ==
               blob.size(),
           "LongitudinalRunner: checkpoint aggregate write failed");
    save_file.reset();  // flush + close before the caller resumes from it
  }

  if (cfg.record_outcomes) {
    for (const FleetStats& rows : outcome_shards) result.outcomes.merge(rows);
  }

  result.devices = static_cast<std::size_t>(n);
  result.start_day = start_day;
  result.end_day = stop_day;
  result.threads_used = threads;
  result.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double device_days =
      static_cast<double>(n) * static_cast<double>(stop_day - start_day);
  result.device_days_per_sec =
      result.wall_s > 0.0 ? device_days / result.wall_s : 0.0;
  return result;
}

}  // namespace iw::fleet
