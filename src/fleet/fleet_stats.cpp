#include "fleet/fleet_stats.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw::fleet {
namespace {

// Sorts in place: callers hand over scratch vectors they no longer need, so
// computing five percentiles costs one sort and zero copies (the generic
// stats::percentile() would copy + sort per call).
FleetStats::Percentiles percentiles_of(std::vector<double>& values) {
  FleetStats::Percentiles p;
  if (values.empty()) return p;
  std::sort(values.begin(), values.end());
  const auto at = [&](double q) {
    const double pos = q / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
  };
  p.p5 = at(5.0);
  p.p25 = at(25.0);
  p.p50 = at(50.0);
  p.p75 = at(75.0);
  p.p95 = at(95.0);
  return p;
}

void append_f(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %s=%.17g", key, v);
  out += buf;
}

void append_u(std::string& out, const char* key, unsigned long long v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %s=%llu", key, v);
  out += buf;
}

void append_percentiles(std::string& out, const char* key,
                        const FleetStats::Percentiles& p) {
  out += ' ';
  out += key;
  out += ":";
  char buf[160];
  std::snprintf(buf, sizeof buf, "[%.17g,%.17g,%.17g,%.17g,%.17g]", p.p5, p.p25,
                p.p50, p.p75, p.p95);
  out += buf;
}

}  // namespace

void FleetStats::set_record_outcomes(bool record) {
  ensure(counters_.devices == 0,
         "FleetStats: retention mode must be set before adding devices");
  record_outcomes_ = record;
}

void FleetStats::add(const DeviceOutcome& outcome) {
  Counters& c = counters_;
  ++c.devices;
  c.detections_attempted += outcome.detections_attempted;
  c.detections_completed += outcome.detections_completed;
  c.detections_skipped += outcome.detections_skipped;
  c.harvested_j += outcome.harvested_j;
  c.consumed_j += outcome.consumed_j;
  c.classified += outcome.classified;
  for (std::size_t i = 0; i < c.class_counts.size(); ++i) {
    c.class_counts[i] += outcome.class_counts[i];
  }
  if (outcome.self_sustaining) ++c.self_sustaining;
  const auto profile = static_cast<std::size_t>(outcome.profile);
  const auto policy = static_cast<std::size_t>(outcome.policy);
  if (profile < c.per_profile.size()) ++c.per_profile[profile];
  if (policy < c.per_policy.size()) ++c.per_policy[policy];
  if (record_outcomes_) outcomes_.push_back(outcome);
}

void FleetStats::merge(const FleetStats& other) {
  ensure(!record_outcomes_ || other.record_outcomes_ ||
             other.counters_.devices == 0,
         "FleetStats: cannot merge a row-free shard into a retaining aggregate");
  Counters& c = counters_;
  const Counters& o = other.counters_;
  c.devices += o.devices;
  c.detections_attempted += o.detections_attempted;
  c.detections_completed += o.detections_completed;
  c.detections_skipped += o.detections_skipped;
  c.harvested_j += o.harvested_j;
  c.consumed_j += o.consumed_j;
  c.self_sustaining += o.self_sustaining;
  c.classified += o.classified;
  for (std::size_t i = 0; i < c.class_counts.size(); ++i) {
    c.class_counts[i] += o.class_counts[i];
  }
  for (std::size_t i = 0; i < c.per_profile.size(); ++i) {
    c.per_profile[i] += o.per_profile[i];
  }
  for (std::size_t i = 0; i < c.per_policy.size(); ++i) {
    c.per_policy[i] += o.per_policy[i];
  }
  if (!record_outcomes_) return;
  // Reserve up front: the engine folds hundreds of shards into one aggregate,
  // and growing geometrically through that reduction re-copies the accumulated
  // table log-many times.
  outcomes_.reserve(outcomes_.size() + other.outcomes_.size());
  outcomes_.insert(outcomes_.end(), other.outcomes_.begin(), other.outcomes_.end());
}

std::vector<DeviceOutcome> FleetStats::outcome_table() const {
  ensure(record_outcomes_ || counters_.devices == 0,
         "FleetStats: outcome table unavailable with row retention off");
  std::vector<DeviceOutcome> table = outcomes_;
  std::sort(table.begin(), table.end(),
            [](const DeviceOutcome& a, const DeviceOutcome& b) {
              return a.device_id < b.device_id;
            });
  return table;
}

namespace {

FleetStats::Summary summarize_table(const std::vector<DeviceOutcome>& table) {
  FleetStats::Summary s;
  s.devices = table.size();

  std::vector<double> final_soc, min_soc, dpm, intake_uw;
  final_soc.reserve(table.size());
  min_soc.reserve(table.size());
  dpm.reserve(table.size());
  intake_uw.reserve(table.size());

  std::size_t self_sustaining = 0;
  for (const DeviceOutcome& d : table) {
    s.detections_attempted += d.detections_attempted;
    s.detections_completed += d.detections_completed;
    s.detections_skipped += d.detections_skipped;
    s.harvested_j += d.harvested_j;
    s.consumed_j += d.consumed_j;
    s.classified += d.classified;
    for (std::size_t i = 0; i < s.class_counts.size(); ++i) {
      s.class_counts[i] += d.class_counts[i];
    }
    if (d.self_sustaining) ++self_sustaining;
    const auto profile = static_cast<std::size_t>(d.profile);
    const auto policy = static_cast<std::size_t>(d.policy);
    if (profile < s.per_profile.size()) ++s.per_profile[profile];
    if (policy < s.per_policy.size()) ++s.per_policy[policy];

    final_soc.push_back(d.final_soc);
    min_soc.push_back(d.min_soc);
    dpm.push_back(d.detections_per_min);
    intake_uw.push_back(d.mean_intake_w * 1e6);
  }
  if (!table.empty()) {
    s.fraction_self_sustaining =
        static_cast<double>(self_sustaining) / static_cast<double>(table.size());
  }
  s.final_soc = percentiles_of(final_soc);
  s.min_soc = percentiles_of(min_soc);
  s.detections_per_min = percentiles_of(dpm);
  s.intake_uw = percentiles_of(intake_uw);
  return s;
}

}  // namespace

FleetStats::Summary FleetStats::summarize() const {
  if (record_outcomes_) return summarize_table(outcome_table());
  // Row-free summary from the running counters; the percentile blocks need
  // per-device values and stay zero.
  Summary s;
  const Counters& c = counters_;
  s.devices = c.devices;
  s.detections_attempted = c.detections_attempted;
  s.detections_completed = c.detections_completed;
  s.detections_skipped = c.detections_skipped;
  s.harvested_j = c.harvested_j;
  s.consumed_j = c.consumed_j;
  s.classified = c.classified;
  s.class_counts = c.class_counts;
  s.per_profile = c.per_profile;
  s.per_policy = c.per_policy;
  if (c.devices > 0) {
    s.fraction_self_sustaining =
        static_cast<double>(c.self_sustaining) / static_cast<double>(c.devices);
  }
  return s;
}

std::string FleetStats::serialize() const {
  // One sorted table pass serves both the summary and the per-device rows
  // (summarize() + the row loop used to each sort their own copy). With row
  // retention off the table is empty and only the summary line is emitted.
  const std::vector<DeviceOutcome> table =
      record_outcomes_ ? outcome_table() : std::vector<DeviceOutcome>{};
  const Summary s = record_outcomes_ ? summarize_table(table) : summarize();
  std::string out = "fleet";
  append_u(out, "devices", s.devices);
  append_u(out, "attempted", s.detections_attempted);
  append_u(out, "completed", s.detections_completed);
  append_u(out, "skipped", s.detections_skipped);
  append_f(out, "harvested_j", s.harvested_j);
  append_f(out, "consumed_j", s.consumed_j);
  append_f(out, "self_sustaining", s.fraction_self_sustaining);
  append_u(out, "classified", s.classified);
  append_u(out, "class_none", s.class_counts[0]);
  append_u(out, "class_medium", s.class_counts[1]);
  append_u(out, "class_high", s.class_counts[2]);
  append_percentiles(out, "final_soc", s.final_soc);
  append_percentiles(out, "min_soc", s.min_soc);
  append_percentiles(out, "det_per_min", s.detections_per_min);
  append_percentiles(out, "intake_uw", s.intake_uw);
  out += '\n';

  for (const DeviceOutcome& d : table) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "dev %llu %s %s days=%d att=%llu ok=%llu skip=%llu "
        "harv=%.17g cons=%.17g soc0=%.17g soc=%.17g min=%.17g dpm=%.17g "
        "intake=%.17g ss=%d cls=%llu/%llu/%llu\n",
        static_cast<unsigned long long>(d.device_id), to_string(d.profile),
        to_string(d.policy), d.days_run,
        static_cast<unsigned long long>(d.detections_attempted),
        static_cast<unsigned long long>(d.detections_completed),
        static_cast<unsigned long long>(d.detections_skipped), d.harvested_j,
        d.consumed_j, d.initial_soc, d.final_soc, d.min_soc, d.detections_per_min,
        d.mean_intake_w, d.self_sustaining ? 1 : 0,
        static_cast<unsigned long long>(d.class_counts[0]),
        static_cast<unsigned long long>(d.class_counts[1]),
        static_cast<unsigned long long>(d.class_counts[2]));
    out += buf;
  }
  return out;
}

}  // namespace iw::fleet
