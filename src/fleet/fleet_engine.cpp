#include "fleet/fleet_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "fleet/cohort_runner.hpp"
#include "fleet/device_instance.hpp"
#include "nn/batch.hpp"

namespace iw::fleet {

FleetEngine::FleetEngine(FleetConfig config) : config_(config) {
  ensure(config_.num_devices > 0, "FleetEngine: need at least one device");
  ensure(config_.threads >= 1, "FleetEngine: need at least one thread");
  ensure(config_.days >= 1, "FleetEngine: need at least one day");
  ensure(config_.chunk_size > 0, "FleetEngine: chunk size must be positive");
}

FleetResult FleetEngine::run() const {
  const std::size_t n = config_.num_devices;
  const std::size_t chunk = config_.chunk_size;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  // One stats shard per *chunk* (not per worker): which thread simulates a
  // chunk then no longer matters, because shards are merged by chunk index.
  std::vector<FleetStats> shards(num_chunks);
  if (!config_.record_outcomes) {
    for (FleetStats& shard : shards) shard.set_record_outcomes(false);
  }
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    try {
      // One batch workspace per worker thread: every device this worker
      // simulates classifies its windows through it. Workspaces are scratch
      // only (results depend on nothing but the inputs), so sharing one
      // across devices cannot break the thread-count-independence invariant.
      std::unique_ptr<nn::FixedBatch> batch;
      if (config_.app != nullptr && config_.batched_classification) {
        batch = std::make_unique<nn::FixedBatch>(config_.app->quantized());
      }
      if (config_.cohort_day && config_.fast_day) {
        // Cohort mode: one chunk = one lockstep cohort. The runner's caches
        // and buffers are per-worker scratch (results depend on nothing but
        // the scenarios), so reuse across chunks keeps thread-count
        // independence intact.
        CohortRunner runner(config_.app, batch.get(),
                            config_.batched_classification);
        std::vector<Scenario> scenarios;
        scenarios.reserve(chunk);
        while (true) {
          const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
          if (c >= num_chunks || failed.load(std::memory_order_relaxed)) break;
          const std::size_t begin = c * chunk;
          const std::size_t end = std::min(begin + chunk, n);
          scenarios.clear();
          for (std::size_t id = begin; id < end; ++id) {
            Scenario scenario = sample_scenario(config_.fleet_seed, id);
            scenario.days = config_.days;
            scenarios.push_back(scenario);
          }
          runner.run(scenarios, shards[c]);
        }
        return;
      }
      // Per-worker day-profile buffers: devices run strictly one after
      // another on a worker, so they can share the scratch, and profile
      // building/scaling stops allocating after the first device.
      DeviceScratch scratch;
      while (true) {
        const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks || failed.load(std::memory_order_relaxed)) break;
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t id = begin; id < end; ++id) {
          Scenario scenario = sample_scenario(config_.fleet_seed, id);
          scenario.days = config_.days;
          DeviceInstance device(scenario, config_.app, batch.get(), &scratch);
          if (!config_.batched_classification) device.set_batched_classification(false);
          if (!config_.fast_day) device.set_fast_day(false);
          device.run();
          shards[c].add(device.outcome());
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  const int threads =
      static_cast<int>(std::min<std::size_t>(config_.threads, num_chunks));
  const auto t0 = std::chrono::steady_clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (first_error) std::rethrow_exception(first_error);

  FleetResult result;
  if (!config_.record_outcomes) result.stats.set_record_outcomes(false);
  // Deterministic reduction: chunk order, which is device-id order.
  for (const FleetStats& shard : shards) result.stats.merge(shard);
  result.devices = n;
  result.threads_used = threads;
  result.wall_s = std::chrono::duration<double>(t1 - t0).count();
  result.devices_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(n) / result.wall_s : 0.0;
  result.device_days_per_sec = result.devices_per_sec * config_.days;
  return result;
}

}  // namespace iw::fleet
