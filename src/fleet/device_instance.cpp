#include "fleet/device_instance.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/error.hpp"
#include "nn/network.hpp"
#include "platform/detection_cost.hpp"
#include "platform/fast_day.hpp"
#include "platform/scheduler.hpp"

namespace iw::fleet {
namespace {

/// Cap on app classifications per device-day: enough to estimate the wearer's
/// predicted-stress distribution without making fleet throughput scale with
/// the duty cycle.
constexpr std::uint64_t kMaxClassifiedPerDay = 8;

}  // namespace

void accumulate_day_outcome(DeviceOutcome& outcome,
                            const platform::DaySimulationResult& day,
                            int days_run) {
  outcome.days_run = days_run;
  outcome.detections_attempted += day.detections_attempted;
  outcome.detections_completed += day.detections_completed;
  outcome.detections_skipped += day.detections_skipped;
  outcome.harvested_j += day.harvested_j;
  outcome.consumed_j += day.consumed_j;
  outcome.final_soc = day.final_soc;
  outcome.min_soc = std::min({outcome.min_soc, day.final_soc, day.min_soc});

  const double minutes = days_run * 24.0 * 60.0;
  outcome.detections_per_min =
      static_cast<double>(outcome.detections_completed) / minutes;
  outcome.mean_intake_w = outcome.harvested_j / (minutes * 60.0);
  // "Wear and forget": never dipped near empty, and the harvest covered the
  // workload (no skips, battery no worse than it started).
  outcome.self_sustaining = outcome.min_soc > 0.05 &&
                            outcome.final_soc >= outcome.initial_soc - 0.01 &&
                            outcome.detections_skipped == 0;
}

void build_windows_by_level(const core::StressDetectionApp& app,
                            std::array<std::vector<std::size_t>, 3>& buckets) {
  for (std::vector<std::size_t>& bucket : buckets) bucket.clear();
  const nn::Dataset& test = app.test_set();
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::size_t label = nn::argmax(std::span<const float>(test.targets[i]));
    if (label < buckets.size()) buckets[label].push_back(i);
  }
}

void draw_day_picks(Rng& rng, const Scenario& scenario,
                    const std::array<std::vector<std::size_t>, 3>& buckets,
                    std::uint64_t completed_today,
                    std::vector<std::size_t>& picks) {
  picks.clear();
  const std::uint64_t n = std::min(completed_today, kMaxClassifiedPerDay);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Sample the wearer's true stress level for this window...
    const double u = rng.uniform();
    std::size_t level = u < scenario.stress_mix[0]                           ? 0
                        : u < scenario.stress_mix[0] + scenario.stress_mix[1] ? 1
                                                                              : 2;
    // ...fall back to any non-empty bucket if the app's test split happens to
    // lack that label entirely.
    if (buckets[level].empty()) {
      for (std::size_t l = 0; l < buckets.size(); ++l) {
        if (!buckets[l].empty()) {
          level = l;
          break;
        }
      }
      if (buckets[level].empty()) break;  // app has no test windows
    }
    const std::vector<std::size_t>& bucket = buckets[level];
    picks.push_back(bucket[rng.uniform_int(bucket.size())]);
  }
}

DeviceInstance::DeviceInstance(Scenario scenario, const core::StressDetectionApp* app,
                               nn::FixedBatch* batch, DeviceScratch* scratch)
    : scenario_(scenario),
      app_(app),
      rng_(scenario.rng_seed),
      scratch_(scratch),
      batch_(batch),
      soc_(scenario.initial_soc) {
  ensure(scenario_.days >= 1, "DeviceInstance: scenario needs at least one day");
  if (scratch_ == nullptr) {
    // Standalone use: own the buffers and run the calibration fit locally.
    own_scratch_ = std::make_unique<DeviceScratch>();
    scratch_ = own_scratch_.get();
  }
  build_day_profile_into(scenario_, base_profile());

  config_.detection = platform::make_detection_cost({});
  config_.detection_period_s = scenario_.detection_period_s;
  config_.initial_soc = scenario_.initial_soc;
  if (scenario_.policy != PolicyKind::kFixedRate) policy_ = make_policy(scenario_);

  outcome_.device_id = scenario_.device_id;
  outcome_.profile = scenario_.profile;
  outcome_.policy = scenario_.policy;
  outcome_.initial_soc = scenario_.initial_soc;
  outcome_.final_soc = scenario_.initial_soc;

  if (app_ != nullptr) {
    // Bucket the shared app's test windows by true label once; detection
    // windows are drawn from the wearer's stress mix out of these buckets.
    build_windows_by_level(*app_, windows_by_level_);
    picks_.reserve(kMaxClassifiedPerDay);
    rows_.reserve(kMaxClassifiedPerDay);
    labels_.reserve(kMaxClassifiedPerDay);
  }
}

bool DeviceInstance::step_day() {
  if (done()) return false;

  // Day-to-day weather/behaviour variation, from this device's own stream.
  const double lux_factor = std::exp(rng_.normal(0.0, scenario_.lux_sigma_day));
  const hv::DayProfile& profile = scaled_profile();
  platform::scale_profile_lux_into(base_profile(), lux_factor, scaled_profile());

  config_.initial_soc = soc_;
  const hv::DualSourceHarvester& harvester = this->harvester();
  const platform::DaySimulationResult day =
      use_fast_day_
          ? (policy_ != nullptr
                 ? platform::simulate_day_fast_with_policy(config_, harvester,
                                                           profile, *policy_)
                 : platform::simulate_day_fast(config_, harvester, profile))
          : (policy_ != nullptr
                 ? platform::simulate_day_with_policy(config_, harvester, profile,
                                                      *policy_)
                 : platform::simulate_day(config_, harvester, profile));

  ++day_;
  soc_ = day.final_soc;
  accumulate_day_outcome(outcome_, day, day_);
  classify_windows(day.detections_completed);
  return !done();
}

void DeviceInstance::run() {
  while (step_day()) {
  }
}

void DeviceInstance::classify_windows(std::uint64_t completed_today) {
  if (app_ == nullptr) return;
  // Draw the day's windows first (the RNG sequence is part of the fleet
  // determinism contract and must not depend on how they are classified)...
  draw_day_picks(rng_, scenario_, windows_by_level_, completed_today, picks_);
  if (picks_.empty()) return;

  // ...then classify them through the deployed fixed-point network, as the
  // device would. The batched path is bit-exact with per-sample classify.
  const nn::Dataset& test = app_->test_set();
  if (use_batching_) {
    if (batch_ == nullptr) {
      owned_batch_ = std::make_unique<nn::FixedBatch>(app_->quantized());
      batch_ = owned_batch_.get();
    }
    rows_.clear();
    for (const std::size_t pick : picks_) rows_.push_back(test.inputs[pick].data());
    labels_.resize(picks_.size());
    batch_->classify(rows_, labels_);
    for (const std::size_t predicted : labels_) {
      ++outcome_.class_counts[std::min<std::size_t>(predicted, 2)];
      ++outcome_.classified;
    }
  } else {
    for (const std::size_t pick : picks_) {
      const std::size_t predicted = app_->quantized().classify(test.inputs[pick]);
      ++outcome_.class_counts[std::min<std::size_t>(predicted, 2)];
      ++outcome_.classified;
    }
  }
}

}  // namespace iw::fleet
