// Concurrent multi-device fleet simulation.
//
// Shards a fleet of virtual devices across a worker-thread pool via a chunked
// work queue (an atomic chunk cursor; each worker claims the next chunk of
// device ids when it runs dry). Hard invariant: for a fixed FleetConfig the
// result is bit-identical regardless of thread count —
//   * every device's randomness is an RNG substream of (fleet seed, device
//     id), so it cannot observe scheduling;
//   * devices share no mutable state (the optional StressDetectionApp is
//     read-only);
//   * per-chunk FleetStats shards are merged in chunk-index order after the
//     pool joins, so the reduction order is fixed too.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/app.hpp"
#include "fleet/fleet_stats.hpp"
#include "fleet/scenario.hpp"

namespace iw::fleet {

struct FleetConfig {
  std::size_t num_devices = 256;
  std::uint64_t fleet_seed = 0x1f2e2020ULL;
  /// Worker threads; 1 runs inline on the calling thread.
  int threads = 1;
  /// Simulated days per device.
  int days = 1;
  /// Devices per work-queue chunk (load-balancing granularity). In cohort
  /// mode a chunk is also one lockstep cohort: larger chunks give the day
  /// kernel longer same-policy, same-period lane runs to sort into full SIMD
  /// packs, which is where the vector tier's throughput comes from. 256
  /// balances that against load-balancing granularity. Chunking is a work
  /// partition only — per-device results never depend on it.
  std::size_t chunk_size = 256;
  /// Optional shared stress-detection app (const access only). When set,
  /// completed detections are classified through its deployed fixed-point
  /// network. Must outlive the run.
  const core::StressDetectionApp* app = nullptr;
  /// Classify each device-day's windows through a per-worker batch workspace
  /// (bit-exact with per-sample classification, so results do not change —
  /// only throughput). Off = per-sample classify, kept for regression tests
  /// and benchmarking the batching win.
  bool batched_classification = true;
  /// Simulate each device-day with the allocation-free segment integrator
  /// (platform/fast_day.hpp) instead of the discrete-event engine. Bit-exact
  /// with the engine path, so results do not change — only throughput. Off
  /// replays the pre-fast-path fleet loop exactly (engine driver plus its
  /// always-on trace recording), kept as the oracle for regression tests and
  /// as the baseline for the throughput benchmark.
  bool fast_day = true;
  /// Advance each chunk of devices as one lockstep cohort through the
  /// structure-of-arrays day kernel (platform/cohort_day.hpp): segment
  /// tables, the detection-gate window and policy objects are shared across
  /// the cohort, and each cohort-day's window classifications go through one
  /// cross-device batch. Bit-exact with the per-device loop, so results do
  /// not change — only throughput. Only applies when `fast_day` is on
  /// (turning fast_day off selects the engine oracle regardless); off falls
  /// back to the per-device scalar fast path, kept for regression tests and
  /// as the baseline for the cohort throughput benchmark.
  bool cohort_day = true;
  /// Retain one DeviceOutcome row per device in the result's FleetStats (see
  /// FleetStats::set_record_outcomes). On (the default) keeps today's full
  /// per-device table — byte-identical output to a build without the toggle.
  /// Off folds each device into running counters and drops the row, making
  /// the aggregate O(1) in fleet size (percentile summaries read as zero).
  bool record_outcomes = true;
};

struct FleetResult {
  FleetStats stats;
  std::size_t devices = 0;
  int threads_used = 1;
  double wall_s = 0.0;
  double devices_per_sec = 0.0;
  /// devices * simulated days per wall-clock second — the fleet throughput
  /// metric that is comparable across configs with different day counts.
  double device_days_per_sec = 0.0;
};

class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  const FleetConfig& config() const { return config_; }

  /// Simulates the whole fleet and reduces the shards. Thread-safe to call
  /// from one thread at a time.
  FleetResult run() const;

 private:
  FleetConfig config_;
};

}  // namespace iw::fleet
