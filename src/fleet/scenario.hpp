// Per-device fleet scenarios: who wears the bracelet and where.
//
// A fleet run simulates many InfiniWolf devices, and N copies of one trace
// would tell us nothing about population behaviour (SELF-CARE shows per-wearer
// context changes stress-detection behaviour). A Scenario captures one
// wearer's world — daily light exposure, body/ambient temperatures for the
// TEG, duty cycle, scheduling policy, stress propensity — and is sampled
// deterministically from (fleet seed, device id) so that a device's entire
// simulation is reproducible independent of which worker thread runs it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "harvest/harvester.hpp"
#include "platform/scheduler.hpp"

namespace iw::fleet {

/// Wearer archetypes; each maps to a distinct 24 h environment structure.
enum class WearerProfile {
  kOfficeWorker = 0,  // commute + 9 h desk light
  kOutdoorWorker = 1, // long daylight exposure, wind on the TEG
  kAthlete = 2,       // office day plus an outdoor training block
  kNightShift = 3,    // inverted schedule, artificial light at night
  kHomebody = 4,      // dim indoor light most of the day
};
inline constexpr int kNumWearerProfiles = 5;
const char* to_string(WearerProfile profile);

/// Which detection-scheduling policy the device firmware runs.
enum class PolicyKind {
  kFixedRate = 0,
  kSocProportional = 1,
  kEnergyNeutral = 2,
};
inline constexpr int kNumPolicyKinds = 3;
const char* to_string(PolicyKind kind);

/// Everything that distinguishes one virtual device from another.
struct Scenario {
  std::uint64_t device_id = 0;
  /// Seed for all in-device randomness (day-to-day weather, window sampling).
  std::uint64_t rng_seed = 0;

  WearerProfile profile = WearerProfile::kOfficeWorker;
  PolicyKind policy = PolicyKind::kFixedRate;

  /// Wearer/venue brightness multiplier applied to the profile's base lux.
  double lux_scale = 1.0;
  /// Body and indoor ambient temperature (drive the TEG ΔT).
  double skin_c = 32.0;
  double ambient_indoor_c = 22.0;
  /// Day-to-day weather variation: each day's light is scaled by
  /// exp(N(0, lux_sigma_day)).
  double lux_sigma_day = 0.3;

  /// Duty cycle: fixed-rate period, and the seed interval for the adaptive
  /// policies.
  double detection_period_s = 60.0;
  double initial_soc = 0.5;
  int days = 1;

  /// Wearer stress propensity: probability that a detection window is
  /// calm / medium / high stress. Sums to 1.
  std::array<double, 3> stress_mix{0.6, 0.3, 0.1};
};

/// Deterministically samples device `device_id`'s scenario from the fleet
/// seed. Uses an RNG substream keyed by the device id, so the result depends
/// only on (fleet_seed, device_id) — never on sampling order or thread
/// scheduling.
Scenario sample_scenario(std::uint64_t fleet_seed, std::uint64_t device_id);

/// Expands a scenario into its wearer's 24 h environment profile.
hv::DayProfile build_day_profile(const Scenario& scenario);

/// Same expansion into a caller-owned buffer whose capacity is reused across
/// devices (the fleet engine keeps one per worker thread).
void build_day_profile_into(const Scenario& scenario, hv::DayProfile& out);

/// Instantiates the scenario's scheduling policy.
std::unique_ptr<platform::DetectionPolicy> make_policy(const Scenario& scenario);

}  // namespace iw::fleet
