#include "fleet/cohort_runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "nn/network.hpp"
#include "platform/detection_cost.hpp"
#include "platform/scheduler.hpp"

namespace iw::fleet {

CohortRunner::CohortRunner(const core::StressDetectionApp* app,
                           nn::FixedBatch* batch, bool batched_classification)
    : app_(app), batch_(batch), use_batching_(batched_classification) {
  if (app_ != nullptr) build_windows_by_level(*app_, windows_by_level_);
}

const platform::DetectionPolicy* CohortRunner::policy_for(
    const Scenario& scenario) {
  // Fixed-rate devices run the kernel's plain periodic stream, exactly like
  // DeviceInstance (a FixedRatePolicy object would be bit-identical but pays
  // a virtual call per attempt).
  if (scenario.policy == PolicyKind::kFixedRate) return nullptr;
  for (const PooledPolicy& p : policies_) {
    if (p.kind == scenario.policy && p.period_s == scenario.detection_period_s) {
      return p.policy.get();
    }
  }
  policies_.push_back(PooledPolicy{scenario.policy, scenario.detection_period_s,
                                   make_policy(scenario)});
  return policies_.back().policy.get();
}

void CohortRunner::run(std::span<const Scenario> scenarios, FleetStats& stats) {
  const std::size_t n = scenarios.size();
  rngs_.clear();
  base_profiles_.resize(std::max(base_profiles_.size(), n));
  scaled_profiles_.resize(std::max(scaled_profiles_.size(), n));
  configs_.resize(std::max(configs_.size(), n));
  results_.resize(std::max(results_.size(), n));
  lane_policy_.resize(std::max(lane_policy_.size(), n));
  outcomes_.resize(std::max(outcomes_.size(), n));
  socs_.resize(std::max(socs_.size(), n));

  int max_days = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Scenario& s = scenarios[i];
    ensure(s.days >= 1, "CohortRunner: scenario needs at least one day");
    max_days = std::max(max_days, s.days);
    rngs_.emplace_back(s.rng_seed);
    build_day_profile_into(s, base_profiles_[i]);
    platform::DeviceConfig& config = configs_[i];
    config = platform::DeviceConfig{};
    config.detection = platform::make_detection_cost({});
    config.detection_period_s = s.detection_period_s;
    config.initial_soc = s.initial_soc;
    lane_policy_[i] = policy_for(s);
    DeviceOutcome& outcome = outcomes_[i];
    outcome = DeviceOutcome{};
    outcome.device_id = s.device_id;
    outcome.profile = s.profile;
    outcome.policy = s.policy;
    outcome.initial_soc = s.initial_soc;
    outcome.final_soc = s.initial_soc;
    socs_[i] = s.initial_soc;
  }

  for (int day = 1; day <= max_days; ++day) {
    members_.clear();
    active_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (day > scenarios[i].days) continue;
      // Day-to-day weather/behaviour variation, from this device's own
      // stream — drawn in the same per-device order as DeviceInstance.
      const double lux_factor =
          std::exp(rngs_[i].normal(0.0, scenarios[i].lux_sigma_day));
      platform::scale_profile_lux_into(base_profiles_[i], lux_factor,
                                       scaled_profiles_[i]);
      configs_[i].initial_soc = socs_[i];
      members_.push_back(platform::CohortMember{&configs_[i], &harvester_,
                                                &scaled_profiles_[i],
                                                lane_policy_[i], &results_[i]});
      active_.push_back(i);
    }
    cohort_.run_day(members_);

    picks_.clear();
    pick_lane_.clear();
    for (const std::size_t i : active_) {
      const platform::DaySimulationResult& result = results_[i];
      socs_[i] = result.final_soc;
      accumulate_day_outcome(outcomes_[i], result, day);
      if (app_ != nullptr) {
        draw_day_picks(rngs_[i], scenarios[i], windows_by_level_,
                       result.detections_completed, lane_picks_);
        for (const std::size_t pick : lane_picks_) {
          picks_.push_back(pick);
          pick_lane_.push_back(i);
        }
      }
    }
    classify_staged();
  }

  for (std::size_t i = 0; i < n; ++i) stats.add(outcomes_[i]);
}

void CohortRunner::classify_staged() {
  if (picks_.empty()) return;
  const nn::Dataset& test = app_->test_set();
  if (use_batching_) {
    if (batch_ == nullptr) {
      owned_batch_ = std::make_unique<nn::FixedBatch>(app_->quantized());
      batch_ = owned_batch_.get();
    }
    // One batched call covering every cohort device's windows for the day —
    // the batch engine is bit-exact per row, so pooling rows across devices
    // yields the same labels each device would compute alone.
    rows_.clear();
    for (const std::size_t pick : picks_) rows_.push_back(test.inputs[pick].data());
    labels_.resize(picks_.size());
    batch_->classify(rows_, labels_);
    for (std::size_t j = 0; j < picks_.size(); ++j) {
      DeviceOutcome& outcome = outcomes_[pick_lane_[j]];
      ++outcome.class_counts[std::min<std::size_t>(labels_[j], 2)];
      ++outcome.classified;
    }
  } else {
    for (std::size_t j = 0; j < picks_.size(); ++j) {
      const std::size_t predicted = app_->quantized().classify(test.inputs[picks_[j]]);
      DeviceOutcome& outcome = outcomes_[pick_lane_[j]];
      ++outcome.class_counts[std::min<std::size_t>(predicted, 2)];
      ++outcome.classified;
    }
  }
}

}  // namespace iw::fleet
