#include "fleet/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace iw::fleet {

const char* to_string(WearerProfile profile) {
  switch (profile) {
    case WearerProfile::kOfficeWorker: return "office-worker";
    case WearerProfile::kOutdoorWorker: return "outdoor-worker";
    case WearerProfile::kAthlete: return "athlete";
    case WearerProfile::kNightShift: return "night-shift";
    case WearerProfile::kHomebody: return "homebody";
  }
  return "unknown";
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFixedRate: return "fixed-rate";
    case PolicyKind::kSocProportional: return "soc-proportional";
    case PolicyKind::kEnergyNeutral: return "energy-neutral";
  }
  return "unknown";
}

Scenario sample_scenario(std::uint64_t fleet_seed, std::uint64_t device_id) {
  // All draws come from the device's substream of the fleet seed; the draw
  // sequence below is part of the fleet determinism contract (reordering it
  // changes every fleet's population, like changing the seed would).
  Rng rng = Rng(fleet_seed).substream(device_id);

  Scenario s;
  s.device_id = device_id;
  s.profile = static_cast<WearerProfile>(rng.uniform_int(kNumWearerProfiles));
  s.policy = static_cast<PolicyKind>(rng.uniform_int(kNumPolicyKinds));

  // Venue brightness: log-normal around the archetype's base lux, clamped so
  // no wearer lives in total darkness or under a stadium floodlight.
  s.lux_scale = std::clamp(std::exp(rng.normal(0.0, 0.35)), 0.3, 3.5);

  // Physiology and climate. Skin temperature varies little between people;
  // indoor ambient varies more (ΔT = skin - ambient drives the TEG).
  s.skin_c = rng.uniform(31.0, 33.5);
  s.ambient_indoor_c = rng.uniform(19.0, 26.0);

  // Duty cycle: most wearers check once a minute, some twice, some relaxed.
  static constexpr double kPeriods[] = {30.0, 60.0, 60.0, 120.0, 300.0};
  s.detection_period_s = kPeriods[rng.uniform_int(std::size(kPeriods))];

  s.initial_soc = rng.uniform(0.25, 0.85);
  s.lux_sigma_day = rng.uniform(0.15, 0.45);

  // Stress propensity: Dirichlet-ish draw biased toward calm, renormalized.
  double none = 0.45 + 0.4 * rng.uniform();
  double medium = 0.10 + 0.35 * rng.uniform();
  double high = 0.02 + 0.25 * rng.uniform();
  const double total = none + medium + high;
  s.stress_mix = {none / total, medium / total, high / total};

  // The device's own stream for day-to-day variation and window sampling is
  // a child of its scenario stream, so adding scenario fields later does not
  // perturb simulated days.
  s.rng_seed = rng.substream(0x5eedULL).seed();
  return s;
}

hv::DayProfile build_day_profile(const Scenario& s) {
  hv::DayProfile profile;
  build_day_profile_into(s, profile);
  return profile;
}

void build_day_profile_into(const Scenario& s, hv::DayProfile& out) {
  using iw::units::hours_to_s;
  const double lx = s.lux_scale;

  hv::Environment night;  // asleep, watch on the nightstand
  night.lux = 0.0;
  night.worn = false;
  night.ambient_c = s.ambient_indoor_c;

  hv::Environment indoor;  // generic indoor segment; lux set per profile
  indoor.skin_c = s.skin_c;
  indoor.ambient_c = s.ambient_indoor_c;

  hv::Environment outdoor;  // daylight, airflow over the TEG
  outdoor.lux = 8000.0 * lx;
  outdoor.skin_c = s.skin_c - 1.5;  // wind-chilled wrist
  outdoor.ambient_c = 15.0;
  outdoor.wind_mps = 3.0;

  hv::Environment exercise = outdoor;  // training block: warm skin, airflow
  exercise.lux = 10000.0 * lx;
  exercise.skin_c = s.skin_c + 1.8;
  exercise.wind_mps = 4.0;

  auto at = [&](double base_lux) {
    hv::Environment env = indoor;
    env.lux = base_lux * lx;
    return env;
  };

  switch (s.profile) {
    case WearerProfile::kOfficeWorker:
      out.assign({
          {hours_to_s(7.0), night},         // 00:00 sleep
          {hours_to_s(1.0), at(300.0)},     // morning routine
          {hours_to_s(0.5), outdoor},       // commute out
          {hours_to_s(9.0), at(500.0)},     // desk
          {hours_to_s(0.5), outdoor},       // commute back
          {hours_to_s(5.0), at(150.0)},     // evening
          {hours_to_s(1.0), night},
      });
      return;
    case WearerProfile::kOutdoorWorker:
      out.assign({
          {hours_to_s(7.0), night},
          {hours_to_s(0.5), at(300.0)},
          {hours_to_s(8.5), outdoor},       // site work in daylight
          {hours_to_s(1.0), at(400.0)},     // breaks indoors
          {hours_to_s(5.5), at(150.0)},
          {hours_to_s(1.5), night},
      });
      return;
    case WearerProfile::kAthlete:
      out.assign({
          {hours_to_s(7.0), night},
          {hours_to_s(1.0), at(300.0)},
          {hours_to_s(0.5), outdoor},
          {hours_to_s(7.5), at(500.0)},
          {hours_to_s(2.0), exercise},      // evening training
          {hours_to_s(5.0), at(150.0)},
          {hours_to_s(1.0), night},
      });
      return;
    case WearerProfile::kNightShift:
      out.assign({
          {hours_to_s(2.0), at(600.0)},     // 00:00 on shift
          {hours_to_s(4.0), at(600.0)},
          {hours_to_s(0.5), at(2000.0)},    // dawn commute
          {hours_to_s(1.0), at(150.0)},     // wind-down
          {hours_to_s(7.0), night},         // daytime sleep
          {hours_to_s(3.0), at(250.0)},     // afternoon at home
          {hours_to_s(0.5), at(2000.0)},    // dusk commute
          {hours_to_s(6.0), at(600.0)},     // back on shift
      });
      return;
    case WearerProfile::kHomebody:
      out.assign({
          {hours_to_s(8.0), night},
          {hours_to_s(7.0), at(250.0)},
          {hours_to_s(0.5), outdoor},       // short errand
          {hours_to_s(7.5), at(200.0)},
          {hours_to_s(1.0), night},
      });
      return;
  }
  ensure(false, "build_day_profile: unknown wearer profile");
}

std::unique_ptr<platform::DetectionPolicy> make_policy(const Scenario& s) {
  const double per_min = 60.0 / s.detection_period_s;
  switch (s.policy) {
    case PolicyKind::kFixedRate:
      return std::make_unique<platform::FixedRatePolicy>(s.detection_period_s);
    case PolicyKind::kSocProportional:
      return std::make_unique<platform::SocProportionalPolicy>(
          std::min(0.2, per_min), std::max(1.0, 2.0 * per_min));
    case PolicyKind::kEnergyNeutral:
      return std::make_unique<platform::EnergyNeutralPolicy>(
          0.9, std::min(0.2, per_min), std::max(1.0, 2.0 * per_min));
  }
  ensure(false, "make_policy: unknown policy kind");
  return nullptr;
}

}  // namespace iw::fleet
