// One virtual InfiniWolf device in a fleet run.
//
// Bundles a wearer scenario's harvester conditions, battery, scheduling
// policy, and (optionally) the shared stress-detection application behind a
// step/run interface. All randomness comes from the scenario's RNG substream,
// and the shared app is only read through const methods, so a device's
// outcome depends on nothing but its Scenario — the property the fleet
// engine's thread-count-independence rests on.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/app.hpp"
#include "fleet/scenario.hpp"
#include "harvest/harvester.hpp"
#include "nn/batch.hpp"
#include "platform/device.hpp"

namespace iw::fleet {

/// Everything the fleet aggregates about one finished device.
struct DeviceOutcome {
  std::uint64_t device_id = 0;
  WearerProfile profile = WearerProfile::kOfficeWorker;
  PolicyKind policy = PolicyKind::kFixedRate;
  int days_run = 0;

  std::uint64_t detections_attempted = 0;
  std::uint64_t detections_completed = 0;
  std::uint64_t detections_skipped = 0;  // battery too low

  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double initial_soc = 0.0;
  double final_soc = 0.0;
  double min_soc = 1.0;

  /// Completed detections per simulated minute.
  double detections_per_min = 0.0;
  /// Average harvest intake over the run, in watts.
  double mean_intake_w = 0.0;
  /// Battery never ran low and ended no worse than it started.
  bool self_sustaining = false;

  /// Stress classifications (through the shared app) by predicted level.
  std::array<std::uint64_t, 3> class_counts{};
  std::uint64_t classified = 0;
};

/// Folds one finished day into a device's running outcome: counters, energy
/// totals, SoC extremes, and the derived per-minute rates / self-sustaining
/// flag. Shared by the per-device loop (DeviceInstance) and the cohort runner
/// so both paths perform the exact same floating-point fold in the same
/// translation unit — part of the fleet's bit-exactness contract.
void accumulate_day_outcome(DeviceOutcome& outcome,
                            const platform::DaySimulationResult& day,
                            int days_run);

/// Buckets a shared app's test-set window indices by true label — the pool
/// detection windows are drawn from. Pure function of the app's test split;
/// the cohort runner computes it once per worker instead of once per device.
void build_windows_by_level(const core::StressDetectionApp& app,
                            std::array<std::vector<std::size_t>, 3>& buckets);

/// Draws the day's classification window picks (capped) from the wearer's
/// stress mix into `picks` (cleared first). This is the day's entire
/// post-simulation RNG consumption, fixed here so the per-device stream stays
/// identical no matter how (or whether) the picks are later classified.
void draw_day_picks(Rng& rng, const Scenario& scenario,
                    const std::array<std::vector<std::size_t>, 3>& buckets,
                    std::uint64_t completed_today,
                    std::vector<std::size_t>& picks);

/// Reusable per-worker state for sequentially simulated devices. The fleet
/// engine keeps one per worker thread so that building and lux-scaling a
/// device's profile stops allocating after the first device, and so the
/// harvester calibration fit — a deterministic nested bisection costing more
/// than an entire simulated device-day — runs once per worker instead of once
/// per device. A scratch must only ever serve one live DeviceInstance at a
/// time.
struct DeviceScratch {
  hv::DayProfile base_profile;
  hv::DayProfile scaled_profile;
  /// Every device uses the same calibrated physics, so sharing one instance
  /// is bit-identical to each device fitting its own.
  hv::DualSourceHarvester harvester = hv::DualSourceHarvester::calibrated();
};

class DeviceInstance {
 public:
  /// `app` may be null (energy/duty-cycle simulation only). When set it must
  /// outlive the instance; it is shared read-only across the whole fleet.
  /// `batch` optionally supplies a shared batch-inference workspace for the
  /// app's deployed network (the fleet engine passes one per worker thread so
  /// devices do not each build their own); it must outlive the instance and
  /// must not be used concurrently. When null and an app is attached, the
  /// device lazily builds its own workspace. `scratch` optionally supplies
  /// per-worker day-profile buffers under the same lifetime/sharing rules;
  /// when null the device owns its buffers.
  explicit DeviceInstance(Scenario scenario,
                          const core::StressDetectionApp* app = nullptr,
                          nn::FixedBatch* batch = nullptr,
                          DeviceScratch* scratch = nullptr);

  /// Disables the batched classification path (per-sample classify instead).
  /// The outcome is bit-identical either way — the batch engine is bit-exact
  /// with per-sample inference — so this exists for regression tests and the
  /// per-sample-vs-batched fleet benchmark. Call before the first step_day().
  void set_batched_classification(bool enabled) { use_batching_ = enabled; }

  /// Switches day simulation back to the discrete-event engine path, replayed
  /// exactly as the fleet ran it before the fast path existed — including the
  /// always-on trace recording it used to pay for every day. The aggregate
  /// outcome is bit-identical either way (traces never reach FleetStats);
  /// this exists as the oracle for regression tests and as the baseline for
  /// the fast-vs-engine fleet benchmark. Call before the first step_day().
  void set_fast_day(bool enabled) {
    use_fast_day_ = enabled;
    config_.record_trace = !enabled;
  }

  /// Simulates one more day (carrying the battery over). Returns false once
  /// the scenario's day count has been reached.
  bool step_day();

  /// Runs all remaining days.
  void run();

  const Scenario& scenario() const { return scenario_; }
  int days_run() const { return day_; }
  bool done() const { return day_ >= scenario_.days; }

  /// Aggregated outcome so far (fully populated once done()).
  const DeviceOutcome& outcome() const { return outcome_; }

 private:
  void classify_windows(std::uint64_t completed_today);

  /// The per-worker scratch (profile buffers + calibrated harvester): the
  /// shared one handed in at construction, or an own lazily built bundle.
  DeviceScratch& scratch() { return *scratch_; }

  hv::DayProfile& base_profile() { return scratch().base_profile; }
  hv::DayProfile& scaled_profile() { return scratch().scaled_profile; }
  const hv::DualSourceHarvester& harvester() { return scratch().harvester; }

  Scenario scenario_;
  const core::StressDetectionApp* app_;
  Rng rng_;
  DeviceScratch* scratch_ = nullptr;
  /// Set (and pointed to by scratch_) only when no shared scratch was given.
  std::unique_ptr<DeviceScratch> own_scratch_;
  platform::DeviceConfig config_;
  std::unique_ptr<platform::DetectionPolicy> policy_;
  /// Test-set window indices of the shared app, bucketed by true label.
  std::array<std::vector<std::size_t>, 3> windows_by_level_;
  /// Batch workspace for the day's window classifications: either the shared
  /// per-worker one handed in at construction, or a lazily built own one.
  nn::FixedBatch* batch_ = nullptr;
  std::unique_ptr<nn::FixedBatch> owned_batch_;
  bool use_batching_ = true;
  bool use_fast_day_ = true;
  /// Per-day classification staging, reused across days (no allocation after
  /// the first day): sampled window indices, their input rows, their labels.
  std::vector<std::size_t> picks_;
  std::vector<const float*> rows_;
  std::vector<std::size_t> labels_;
  double soc_ = 0.5;
  int day_ = 0;
  DeviceOutcome outcome_;
};

}  // namespace iw::fleet
