#include "bio/hrv.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw::bio {

namespace {
std::vector<double> successive_differences(std::span<const double> rr_s) {
  std::vector<double> diffs;
  if (rr_s.size() < 2) return diffs;
  diffs.reserve(rr_s.size() - 1);
  for (std::size_t i = 1; i < rr_s.size(); ++i) diffs.push_back(rr_s[i] - rr_s[i - 1]);
  return diffs;
}
}  // namespace

double rmssd(std::span<const double> rr_s) {
  const std::vector<double> diffs = successive_differences(rr_s);
  if (diffs.empty()) return 0.0;
  return rms(diffs);
}

double sdsd(std::span<const double> rr_s) {
  const std::vector<double> diffs = successive_differences(rr_s);
  if (diffs.size() < 2) return 0.0;
  return stddev(diffs);
}

int nn50(std::span<const double> rr_s) {
  const std::vector<double> diffs = successive_differences(rr_s);
  int count = 0;
  for (double d : diffs) {
    if (std::abs(d) > 0.050) ++count;
  }
  return count;
}

double pnn50(std::span<const double> rr_s) {
  const std::vector<double> diffs = successive_differences(rr_s);
  if (diffs.empty()) return 0.0;
  return static_cast<double>(nn50(rr_s)) / static_cast<double>(diffs.size());
}

double mean_heart_rate_bpm(std::span<const double> rr_s) {
  ensure(!rr_s.empty(), "mean_heart_rate_bpm: empty RR series");
  return 60.0 / mean(rr_s);
}

double sdnn(std::span<const double> rr_s) {
  if (rr_s.size() < 2) return 0.0;
  return stddev(rr_s);
}

double pnn20(std::span<const double> rr_s) {
  const std::vector<double> diffs = successive_differences(rr_s);
  if (diffs.empty()) return 0.0;
  int count = 0;
  for (double d : diffs) {
    if (std::abs(d) > 0.020) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(diffs.size());
}

PoincareDescriptors poincare(std::span<const double> rr_s) {
  PoincareDescriptors out;
  const std::vector<double> diffs = successive_differences(rr_s);
  if (diffs.size() < 2) return out;
  // SD1^2 = var(diffs)/2 ; SD2^2 = 2*SDNN^2 - SD1^2 (standard identities).
  const double sd1_sq = variance(diffs) / 2.0;
  const double sdnn_sq = variance(rr_s);
  out.sd1_s = std::sqrt(std::max(0.0, sd1_sq));
  out.sd2_s = std::sqrt(std::max(0.0, 2.0 * sdnn_sq - sd1_sq));
  out.ratio = out.sd1_s > 0.0 ? out.sd2_s / out.sd1_s : 0.0;
  return out;
}

double triangular_index(std::span<const double> rr_s) {
  if (rr_s.size() < 2) return 0.0;
  // Histogram with the task-force bin width of 1/128 s.
  constexpr double kBin = 1.0 / 128.0;
  std::vector<int> bins;
  int peak = 0;
  for (double rr : rr_s) {
    const std::size_t index = static_cast<std::size_t>(rr / kBin);
    if (index >= bins.size()) bins.resize(index + 1, 0);
    peak = std::max(peak, ++bins[index]);
  }
  return static_cast<double>(rr_s.size()) / static_cast<double>(peak);
}

}  // namespace iw::bio
