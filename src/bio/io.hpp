// CSV import/export for biosignal recordings.
//
// Lets users run the InfiniWolf pipeline on their own data (e.g. actual
// drivedb exports converted to CSV) and persist synthetic recordings.
// Format: a two-column CSV "time_s,value" with a header line; the sample
// rate is recovered from the time column (must be uniform).
#pragma once

#include <iosfwd>
#include <string>

#include "bio/ecg.hpp"
#include "bio/gsr.hpp"

namespace iw::bio {

/// Writes samples as "time_s,value" rows with the given header name.
void write_signal_csv(std::ostream& os, double fs_hz,
                      const std::vector<float>& samples,
                      const std::string& value_name);

/// Parsed generic signal.
struct CsvSignal {
  double fs_hz = 0.0;
  std::vector<float> samples;
};

/// Reads a two-column CSV written by write_signal_csv (or compatible).
/// Throws on malformed rows or a non-uniform time base (0.1% tolerance).
CsvSignal read_signal_csv(std::istream& is);

/// Convenience wrappers for the two signal types.
void save_ecg_csv(std::ostream& os, const EcgSignal& signal);
EcgSignal load_ecg_csv(std::istream& is);
void save_gsr_csv(std::ostream& os, const GsrSignal& signal);
GsrSignal load_gsr_csv(std::istream& is);

}  // namespace iw::bio
