// Heart-rate-variability features used by the paper (Section III):
// RMSSD, SDSD and NN50 over the successive differences of RR intervals.
#pragma once

#include <span>

namespace iw::bio {

/// Root mean square of successive RR differences (seconds). Requires at
/// least two intervals; returns 0 otherwise.
double rmssd(std::span<const double> rr_s);

/// Standard deviation of successive RR differences (seconds).
double sdsd(std::span<const double> rr_s);

/// Number of adjacent RR pairs differing by more than 50 ms.
int nn50(std::span<const double> rr_s);

/// NN50 normalized by the number of difference pairs (pNN50 in [0,1]).
double pnn50(std::span<const double> rr_s);

/// Mean heart rate in beats per minute.
double mean_heart_rate_bpm(std::span<const double> rr_s);

// --- extended HRV metrics (library completeness beyond the paper's five
// features; useful for richer classifiers on the same pipeline) -----------

/// Standard deviation of the RR intervals themselves (seconds).
double sdnn(std::span<const double> rr_s);

/// Fraction of adjacent pairs differing by more than 20 ms (pNN20, [0,1]).
double pnn20(std::span<const double> rr_s);

/// Poincare-plot descriptors: SD1 (short-term) and SD2 (long-term)
/// dispersion along the perpendicular/parallel of the identity line.
struct PoincareDescriptors {
  double sd1_s = 0.0;
  double sd2_s = 0.0;
  /// SD2/SD1 ratio; 0 when SD1 is 0.
  double ratio = 0.0;
};
PoincareDescriptors poincare(std::span<const double> rr_s);

/// HRV triangular index: count / max histogram bin over 1/128 s bins
/// (standard task-force definition). Returns 0 for fewer than 2 intervals.
double triangular_index(std::span<const double> rr_s);

}  // namespace iw::bio
