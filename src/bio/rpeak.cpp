#include "bio/rpeak.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace iw::bio {

std::vector<double> detect_r_peaks(const EcgSignal& signal,
                                   const RPeakDetectorConfig& config) {
  ensure(!signal.samples.empty(), "detect_r_peaks: empty signal");
  const std::size_t n = signal.samples.size();
  const double fs = signal.fs_hz;

  // 1. Low-pass smoothing so the derivative's noise floor does not scale
  // with the sampling rate (Pan-Tompkins uses a bandpass here).
  const std::size_t lp =
      std::max<std::size_t>(1, static_cast<std::size_t>(config.lowpass_s * fs));
  std::vector<double> smooth(n, 0.0);
  double lp_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    lp_acc += signal.samples[i];
    if (i >= lp) lp_acc -= signal.samples[i - lp];
    smooth[i] = lp_acc / static_cast<double>(std::min(i + 1, lp));
  }

  // 2. Derivative (suppresses baseline wander and P/T waves), then square.
  std::vector<double> energy(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    const double d = (smooth[i] - smooth[i - 1]) * fs;
    energy[i] = d * d;
  }

  // 3. Moving-window integration.
  const std::size_t win = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.integration_window_s * fs));
  std::vector<double> integrated(n, 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += energy[i];
    if (i >= win) acc -= energy[i - win];
    integrated[i] = acc / static_cast<double>(win);
  }

  // 4. Adaptive threshold with refractory period.
  const std::size_t refractory =
      static_cast<std::size_t>(config.refractory_s * fs);
  const double global_peak = *std::max_element(integrated.begin(), integrated.end());
  double running_peak = global_peak;
  std::vector<double> peaks;
  std::size_t last_peak = 0;
  bool have_peak = false;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (have_peak && i - last_peak < refractory) continue;
    const double threshold = config.threshold_fraction * running_peak;
    if (integrated[i] > threshold && integrated[i] >= integrated[i - 1] &&
        integrated[i] >= integrated[i + 1]) {
      // Refine: local maximum of the raw signal around the integrator peak.
      const std::size_t lo = i >= win ? i - win : 0;
      const std::size_t hi = std::min(n - 1, i + win / 2);
      std::size_t best = lo;
      for (std::size_t j = lo; j <= hi; ++j) {
        if (signal.samples[j] > signal.samples[best]) best = j;
      }
      peaks.push_back(static_cast<double>(best) / fs);
      last_peak = i;
      have_peak = true;
      running_peak = 0.875 * running_peak + 0.125 * integrated[i];
    }
  }
  // De-duplicate refined peaks that collapsed onto the same sample.
  peaks.erase(std::unique(peaks.begin(), peaks.end()), peaks.end());
  return peaks;
}

std::vector<double> rr_from_peaks(const std::vector<double>& peak_times_s) {
  std::vector<double> rr;
  if (peak_times_s.size() < 2) return rr;
  rr.reserve(peak_times_s.size() - 1);
  for (std::size_t i = 1; i < peak_times_s.size(); ++i) {
    rr.push_back(peak_times_s[i] - peak_times_s[i - 1]);
  }
  return rr;
}

}  // namespace iw::bio
