// Synthetic galvanic skin response and the paper's GSR slope features.
//
// GSR (electrodermal activity) consists of a slowly varying tonic level plus
// phasic skin-conductance responses (SCRs): sharp rises followed by slow
// exponential recovery. Arousal/stress raises both the SCR event rate and
// amplitude. Following Bakker et al. (the paper's reference [18]), the
// features are computed from detected rising edges: GSRH is the height and
// GSRL the length (duration) of each rising slope.
#pragma once

#include <vector>

#include "bio/ecg.hpp"  // StressLevel
#include "common/rng.hpp"

namespace iw::bio {

struct GsrSignal {
  double fs_hz = 32.0;
  std::vector<float> samples;  // microsiemens
};

struct GsrSynthParams {
  double fs_hz = 32.0;
  double tonic_level_us = 2.0;
  double tonic_drift_us = 0.1;
  double scr_rate_hz = 0.05;        // SCR events per second
  double scr_amplitude_us = 0.35;   // mean SCR amplitude
  double scr_rise_s = 1.2;          // rise time
  double scr_decay_s = 4.0;         // recovery time constant
  double noise_us = 0.01;
};

/// Parameter presets per stress level: stress raises SCR rate and amplitude.
GsrSynthParams gsr_params_for(StressLevel level);

/// Generates a sampled GSR trace of the given duration.
GsrSignal synthesize_gsr(const GsrSynthParams& params, double duration_s, Rng& rng);

/// One detected rising slope of the GSR signal.
struct GsrSlope {
  double onset_s = 0.0;
  double length_s = 0.0;  // GSRL: duration of the rise
  double height_us = 0.0; // GSRH: amplitude of the rise
};

struct GsrSlopeDetectorConfig {
  /// Minimum rise (microsiemens) for a slope to count as an SCR.
  double min_height_us = 0.05;
  /// Smoothing window for the derivative (seconds).
  double smooth_s = 0.25;
};

/// Detects rising edges following Bakker et al.'s slope-based scheme.
std::vector<GsrSlope> detect_gsr_slopes(const GsrSignal& signal,
                                        const GsrSlopeDetectorConfig& config = {});

/// Aggregate slope features over a window: mean height and mean length.
/// Returns {0, 0} when no slopes were detected.
struct GsrFeatures {
  double mean_height_us = 0.0;  // GSRH
  double mean_length_s = 0.0;   // GSRL
  int slope_count = 0;
};
GsrFeatures gsr_features(const std::vector<GsrSlope>& slopes);

}  // namespace iw::bio
