#include "bio/gsr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw::bio {

GsrSynthParams gsr_params_for(StressLevel level) {
  GsrSynthParams p;
  switch (level) {
    case StressLevel::kNone:
      p.scr_rate_hz = 0.03;
      p.scr_amplitude_us = 0.18;
      p.scr_rise_s = 1.6;
      p.tonic_level_us = 1.8;
      break;
    case StressLevel::kMedium:
      p.scr_rate_hz = 0.08;
      p.scr_amplitude_us = 0.35;
      p.scr_rise_s = 1.2;
      p.tonic_level_us = 2.4;
      break;
    case StressLevel::kHigh:
      p.scr_rate_hz = 0.16;
      p.scr_amplitude_us = 0.60;
      p.scr_rise_s = 0.9;
      p.tonic_level_us = 3.2;
      break;
  }
  return p;
}

GsrSignal synthesize_gsr(const GsrSynthParams& params, double duration_s, Rng& rng) {
  ensure(duration_s > 0.0, "synthesize_gsr: duration must be positive");
  ensure(params.fs_hz >= 4.0, "synthesize_gsr: sample rate too low");

  // Draw SCR event times from a Poisson process.
  std::vector<double> events;
  std::vector<double> amplitudes;
  double t = rng.exponential(std::max(params.scr_rate_hz, 1e-6));
  while (t < duration_s) {
    events.push_back(t);
    amplitudes.push_back(std::max(0.02, rng.normal(params.scr_amplitude_us,
                                                   0.3 * params.scr_amplitude_us)));
    t += rng.exponential(std::max(params.scr_rate_hz, 1e-6));
  }

  GsrSignal signal;
  signal.fs_hz = params.fs_hz;
  const std::size_t n = static_cast<std::size_t>(duration_s * params.fs_hz);
  signal.samples.resize(n);
  double drift = 0.0;
  const double alpha = 0.999;
  for (std::size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i) / params.fs_hz;
    drift = alpha * drift + (1.0 - alpha) * rng.normal(0.0, params.tonic_drift_us * 20.0);
    double v = params.tonic_level_us + drift;
    for (std::size_t e = 0; e < events.size(); ++e) {
      const double dt = ts - events[e];
      if (dt < 0.0) break;  // events sorted; later ones have not started
      // Smooth rise (sigmoid-like via 1-exp) followed by exponential decay.
      const double rise = 1.0 - std::exp(-dt / (params.scr_rise_s / 3.0));
      const double decay = std::exp(-std::max(0.0, dt - params.scr_rise_s) /
                                    params.scr_decay_s);
      v += amplitudes[e] * rise * decay;
    }
    v += rng.normal(0.0, params.noise_us);
    signal.samples[i] = static_cast<float>(v);
  }
  return signal;
}

std::vector<GsrSlope> detect_gsr_slopes(const GsrSignal& signal,
                                        const GsrSlopeDetectorConfig& config) {
  std::vector<GsrSlope> slopes;
  const std::size_t n = signal.samples.size();
  if (n < 4) return slopes;

  // Light smoothing to de-noise the derivative.
  const std::size_t win = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.smooth_s * signal.fs_hz));
  std::vector<double> smooth(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += signal.samples[i];
    if (i >= win) acc -= signal.samples[i - win];
    smooth[i] = acc / static_cast<double>(std::min(i + 1, win));
  }

  // Walk rising segments: a rise continues while the per-sample derivative
  // stays above a small threshold (so plateaus terminate the slope).
  const double eps = config.min_height_us * 0.05;
  const auto rising = [&](std::size_t i) { return smooth[i] - smooth[i - 1] > eps; };
  std::size_t i = 1;
  while (i < n) {
    while (i < n && !rising(i)) ++i;
    if (i >= n) break;
    const std::size_t start = i - 1;
    while (i < n && rising(i)) ++i;
    const std::size_t end = i - 1;
    const double height = smooth[end] - smooth[start];
    if (height >= config.min_height_us) {
      GsrSlope slope;
      slope.onset_s = static_cast<double>(start) / signal.fs_hz;
      slope.length_s = static_cast<double>(end - start) / signal.fs_hz;
      slope.height_us = height;
      slopes.push_back(slope);
    }
  }
  return slopes;
}

GsrFeatures gsr_features(const std::vector<GsrSlope>& slopes) {
  GsrFeatures f;
  f.slope_count = static_cast<int>(slopes.size());
  if (slopes.empty()) return f;
  double h = 0.0, l = 0.0;
  for (const GsrSlope& s : slopes) {
    h += s.height_us;
    l += s.length_s;
  }
  f.mean_height_us = h / static_cast<double>(slopes.size());
  f.mean_length_s = l / static_cast<double>(slopes.size());
  return f;
}

}  // namespace iw::bio
