// R-peak detection (Pan-Tompkins style) and RR-interval extraction.
#pragma once

#include <vector>

#include "bio/ecg.hpp"

namespace iw::bio {

struct RPeakDetectorConfig {
  /// Low-pass (boxcar) window applied before differentiation; without it the
  /// derivative's noise power grows with the sampling rate squared.
  double lowpass_s = 0.025;
  /// Moving-integration window (seconds) over the squared derivative.
  double integration_window_s = 0.12;
  /// Refractory period after a detection (seconds).
  double refractory_s = 0.25;
  /// Threshold as a fraction of the running signal peak estimate.
  double threshold_fraction = 0.35;
};

/// Detects R-peak times (seconds) in a sampled ECG.
std::vector<double> detect_r_peaks(const EcgSignal& signal,
                                   const RPeakDetectorConfig& config = {});

/// Converts peak times into RR intervals (seconds).
std::vector<double> rr_from_peaks(const std::vector<double>& peak_times_s);

}  // namespace iw::bio
