// Synthetic ECG generation with stress-dependent heart-rate variability.
//
// The paper extracts its ECG features from the PhysioNet drivedb recordings.
// As a stand-in we synthesize ECG with a physiologically structured model:
// an RR-interval process (mean heart rate + respiratory sinus arrhythmia +
// beat-to-beat jitter, all modulated by the stress level) that drives a
// waveform synthesizer placing P-QRS-T complexes at each beat. Higher stress
// raises heart rate and suppresses short-term variability (lower RMSSD/SDSD/
// NN50), which is the separation the paper's features rely on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace iw::bio {

/// Discrete stress level, following the paper's 3-class scheme.
enum class StressLevel { kNone = 0, kMedium = 1, kHigh = 2 };

const char* to_string(StressLevel level);

/// RR-interval process parameters for one stress level.
struct RrProcessParams {
  double mean_rr_s = 0.85;        // mean beat interval
  double rsa_amplitude_s = 0.05;  // respiratory sinus arrhythmia amplitude
  double resp_rate_hz = 0.25;     // breathing rate
  double jitter_s = 0.03;         // white beat-to-beat jitter (drives RMSSD)
  double drift_s = 0.02;          // slow AR(1) drift amplitude
};

/// Physiologically plausible parameter presets per stress level.
RrProcessParams rr_params_for(StressLevel level);

/// Generates RR intervals (seconds) covering at least `duration_s`.
std::vector<double> generate_rr_intervals(const RrProcessParams& params,
                                          double duration_s, Rng& rng);

struct EcgSignal {
  double fs_hz = 256.0;
  std::vector<float> samples;        // millivolts
  std::vector<double> beat_times_s;  // ground-truth R-peak times
};

struct EcgSynthParams {
  double fs_hz = 256.0;
  double qrs_amplitude_mv = 1.2;
  double noise_mv = 0.02;           // measurement noise
  double baseline_wander_mv = 0.05; // slow baseline drift
};

/// Renders a sampled ECG waveform from an RR-interval series.
EcgSignal synthesize_ecg(const std::vector<double>& rr_intervals,
                         const EcgSynthParams& params, Rng& rng);

}  // namespace iw::bio
