#include "bio/features.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "bio/hrv.hpp"
#include "bio/rpeak.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace iw::bio {

RawFeatures compute_features(std::span<const double> rr_intervals_s,
                             const std::vector<GsrSlope>& slopes) {
  RawFeatures f{};
  f[kFeatRmssd] = rmssd(rr_intervals_s);
  f[kFeatSdsd] = sdsd(rr_intervals_s);
  f[kFeatNn50] = static_cast<double>(nn50(rr_intervals_s));
  const GsrFeatures g = gsr_features(slopes);
  f[kFeatGsrl] = g.mean_length_s;
  f[kFeatGsrh] = g.mean_height_us;
  return f;
}

std::vector<RawFeatures> extract_windows(const EcgSignal& ecg, const GsrSignal& gsr,
                                         const WindowConfig& config) {
  ensure(config.window_s > 1.0, "extract_windows: window too short");
  ensure(config.overlap_fraction >= 0.0 && config.overlap_fraction < 1.0,
         "extract_windows: bad overlap");

  const std::vector<double> peaks = detect_r_peaks(ecg);
  const std::vector<GsrSlope> slopes = detect_gsr_slopes(gsr);

  const double duration = std::min(
      static_cast<double>(ecg.samples.size()) / ecg.fs_hz,
      static_cast<double>(gsr.samples.size()) / gsr.fs_hz);
  const double stride = config.window_s * (1.0 - config.overlap_fraction);

  std::vector<RawFeatures> out;
  for (double t0 = 0.0; t0 + config.window_s <= duration; t0 += stride) {
    const double t1 = t0 + config.window_s;
    // RR intervals whose *ending* peak falls inside the window.
    std::vector<double> rr;
    for (std::size_t i = 1; i < peaks.size(); ++i) {
      if (peaks[i] >= t0 && peaks[i] < t1) rr.push_back(peaks[i] - peaks[i - 1]);
    }
    if (rr.size() < 4) continue;  // not enough beats for stable HRV features
    std::vector<GsrSlope> window_slopes;
    for (const GsrSlope& s : slopes) {
      if (s.onset_s >= t0 && s.onset_s < t1) window_slopes.push_back(s);
    }
    out.push_back(compute_features(rr, window_slopes));
  }
  return out;
}

FeatureNormalizer FeatureNormalizer::fit(std::span<const RawFeatures> samples) {
  ensure(!samples.empty(), "FeatureNormalizer::fit: no samples");
  FeatureNormalizer norm;
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    std::vector<double> values;
    values.reserve(samples.size());
    for (const RawFeatures& s : samples) values.push_back(s[f]);
    norm.lo_[f] = percentile(values, 2.0);
    norm.hi_[f] = percentile(values, 98.0);
    if (norm.hi_[f] - norm.lo_[f] < 1e-12) norm.hi_[f] = norm.lo_[f] + 1.0;
  }
  return norm;
}

void FeatureNormalizer::save(std::ostream& os) const {
  os << "IWNORM1\n";
  os.precision(17);
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    os << lo_[f] << ' ' << hi_[f] << '\n';
  }
}

FeatureNormalizer FeatureNormalizer::load(std::istream& is) {
  std::string magic;
  is >> magic;
  ensure(magic == "IWNORM1", "FeatureNormalizer::load: bad magic");
  FeatureNormalizer norm;
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    is >> norm.lo_[f] >> norm.hi_[f];
    ensure(is.good() || is.eof(), "FeatureNormalizer::load: truncated");
    ensure(norm.hi_[f] > norm.lo_[f], "FeatureNormalizer::load: inverted range");
  }
  return norm;
}

std::vector<float> FeatureNormalizer::apply(const RawFeatures& raw) const {
  std::vector<float> out(kNumFeatures);
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    const double unit = (raw[f] - lo_[f]) / (hi_[f] - lo_[f]);  // 0..1
    out[f] = static_cast<float>(std::clamp(2.0 * unit - 1.0, -1.0, 1.0));
  }
  return out;
}

}  // namespace iw::bio
