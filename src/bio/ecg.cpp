#include "bio/ecg.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace iw::bio {

const char* to_string(StressLevel level) {
  switch (level) {
    case StressLevel::kNone: return "no stress";
    case StressLevel::kMedium: return "medium stress";
    case StressLevel::kHigh: return "stress";
  }
  return "?";
}

RrProcessParams rr_params_for(StressLevel level) {
  // Stress raises heart rate and suppresses vagally mediated short-term
  // variability (RSA and beat-to-beat jitter), the classic HRV signature.
  switch (level) {
    case StressLevel::kNone:
      return RrProcessParams{0.90, 0.055, 0.22, 0.034, 0.025};
    case StressLevel::kMedium:
      return RrProcessParams{0.78, 0.035, 0.28, 0.020, 0.018};
    case StressLevel::kHigh:
      return RrProcessParams{0.66, 0.018, 0.33, 0.010, 0.012};
  }
  fail("rr_params_for: bad level");
}

std::vector<double> generate_rr_intervals(const RrProcessParams& params,
                                          double duration_s, Rng& rng) {
  ensure(duration_s > 0.0, "generate_rr_intervals: duration must be positive");
  ensure(params.mean_rr_s > 0.2 && params.mean_rr_s < 2.0,
         "generate_rr_intervals: implausible mean RR");
  std::vector<double> intervals;
  double t = 0.0;
  double drift = 0.0;
  // AR(1) coefficient for the slow drift component.
  const double alpha = 0.95;
  while (t < duration_s) {
    drift = alpha * drift +
            std::sqrt(1.0 - alpha * alpha) * rng.normal(0.0, params.drift_s);
    const double rsa = params.rsa_amplitude_s *
                       std::sin(2.0 * std::numbers::pi * params.resp_rate_hz * t);
    const double jitter = rng.normal(0.0, params.jitter_s);
    double rr = params.mean_rr_s + rsa + drift + jitter;
    rr = std::max(0.3, std::min(rr, 2.0));  // physiological clamp
    intervals.push_back(rr);
    t += rr;
  }
  return intervals;
}

namespace {

/// Gaussian bump helper for waveform components.
double bump(double t, double center, double width, double amplitude) {
  const double z = (t - center) / width;
  return amplitude * std::exp(-0.5 * z * z);
}

/// One P-QRS-T complex evaluated at time offset `t` after the R peak.
double pqrst(double t, double qrs_amplitude) {
  double v = 0.0;
  v += bump(t, -0.20, 0.025, 0.15 * qrs_amplitude);  // P wave
  v += bump(t, -0.025, 0.010, -0.12 * qrs_amplitude); // Q dip
  v += bump(t, 0.0, 0.012, qrs_amplitude);            // R spike
  v += bump(t, 0.030, 0.012, -0.20 * qrs_amplitude);  // S dip
  v += bump(t, 0.25, 0.060, 0.30 * qrs_amplitude);    // T wave
  return v;
}

}  // namespace

EcgSignal synthesize_ecg(const std::vector<double>& rr_intervals,
                         const EcgSynthParams& params, Rng& rng) {
  ensure(!rr_intervals.empty(), "synthesize_ecg: empty RR series");
  ensure(params.fs_hz >= 64.0, "synthesize_ecg: sample rate too low");

  EcgSignal signal;
  signal.fs_hz = params.fs_hz;
  double t = 0.5;  // first beat offset
  for (double rr : rr_intervals) {
    signal.beat_times_s.push_back(t);
    t += rr;
  }
  const double duration = t + 0.5;
  const std::size_t n = static_cast<std::size_t>(duration * params.fs_hz);
  signal.samples.resize(n);

  std::size_t beat_lo = 0;
  const double wander_rate = 0.3;
  double wander_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i) / params.fs_hz;
    // Only beats within +/-0.5 s contribute.
    while (beat_lo + 1 < signal.beat_times_s.size() &&
           signal.beat_times_s[beat_lo] < ts - 0.5) {
      ++beat_lo;
    }
    double v = 0.0;
    for (std::size_t b = beat_lo; b < signal.beat_times_s.size(); ++b) {
      const double dt = ts - signal.beat_times_s[b];
      if (dt < -0.5) break;
      v += pqrst(dt, params.qrs_amplitude_mv);
    }
    v += params.baseline_wander_mv *
         std::sin(2.0 * std::numbers::pi * wander_rate * ts + wander_phase);
    v += rng.normal(0.0, params.noise_mv);
    signal.samples[i] = static_cast<float>(v);
  }
  return signal;
}

}  // namespace iw::bio
