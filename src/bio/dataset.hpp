// Labeled stress dataset builder (the drivedb substitute).
//
// PhysioNet's drivedb recordings (the paper's data source) are gated behind a
// download we cannot assume; instead we synthesize multi-subject ECG + GSR
// recordings whose HRV/EDA statistics separate by stress level, then run the
// *identical* pipeline the paper describes: split into equal-stress segments,
// overlapping windows, 5 features per window, 3-class labels.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/ecg.hpp"
#include "bio/features.hpp"
#include "nn/train.hpp"

namespace iw::bio {

struct StressDatasetConfig {
  int subjects = 6;
  double minutes_per_level = 10.0;
  WindowConfig window;
  std::uint64_t seed = 2020;
  /// Relative inter-subject variability applied to the physiological
  /// parameters (0.1 = +/-10%).
  double subject_variability = 0.10;
  /// Scales how far the stress levels' physiological parameters sit apart
  /// (1.0 = the presets; smaller values blend every level toward the medium
  /// preset, making the classification task harder).
  double level_separation = 1.0;
};

struct LabeledWindow {
  RawFeatures raw{};
  StressLevel level = StressLevel::kNone;
  int subject = 0;
};

struct StressDataset {
  std::vector<LabeledWindow> windows;
  FeatureNormalizer normalizer;
  /// Normalized features + one-hot targets, ready for nn::train_rprop.
  nn::Dataset data;
};

/// Generates the dataset: for every subject and stress level, synthesize a
/// recording, extract windowed features, and label them. The normalizer is
/// fitted on the full feature set and applied to produce `data`.
StressDataset build_stress_dataset(const StressDatasetConfig& config = {});

}  // namespace iw::bio
