// Windowed feature extraction: the paper's 5 features per analysis window
// (RMSSD, SDSD, NN50 from ECG; GSRL, GSRH from GSR), plus the normalizer
// that maps raw features into the [-1, 1] range the fixed-point network
// expects at its inputs.
#pragma once

#include <array>
#include <iosfwd>
#include <span>
#include <vector>

#include "bio/ecg.hpp"
#include "bio/gsr.hpp"

namespace iw::bio {

inline constexpr std::size_t kNumFeatures = 5;

/// Feature order matches Fig. 3 of the paper.
enum FeatureIndex : std::size_t {
  kFeatRmssd = 0,
  kFeatSdsd = 1,
  kFeatNn50 = 2,
  kFeatGsrl = 3,
  kFeatGsrh = 4,
};

using RawFeatures = std::array<double, kNumFeatures>;

struct WindowConfig {
  double window_s = 60.0;
  double overlap_fraction = 0.5;  // 50% overlapping windows, as in the paper
};

/// Extracts one feature vector per overlapping window from a synchronized
/// ECG + GSR recording. Windows with fewer than 4 detected beats are skipped.
std::vector<RawFeatures> extract_windows(const EcgSignal& ecg, const GsrSignal& gsr,
                                         const WindowConfig& config = {});

/// Extracts the paper's 5 features from pre-windowed primitives.
RawFeatures compute_features(std::span<const double> rr_intervals_s,
                             const std::vector<GsrSlope>& slopes);

/// Linear per-feature normalization into [-1, 1], fitted on training data
/// (robust to outliers via 2nd/98th percentiles) and then frozen for
/// deployment — on the device the same constants live in firmware.
class FeatureNormalizer {
 public:
  static FeatureNormalizer fit(std::span<const RawFeatures> samples);

  /// Maps raw features into [-1, 1] (clamped).
  std::vector<float> apply(const RawFeatures& raw) const;

  double lo(std::size_t feature) const { return lo_[feature]; }
  double hi(std::size_t feature) const { return hi_[feature]; }

  /// Text serialization: the constants ship with the deployed firmware.
  void save(std::ostream& os) const;
  static FeatureNormalizer load(std::istream& is);

 private:
  std::array<double, kNumFeatures> lo_{};
  std::array<double, kNumFeatures> hi_{};
};

}  // namespace iw::bio
