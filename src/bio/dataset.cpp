#include "bio/dataset.hpp"

#include "common/error.hpp"

namespace iw::bio {

namespace {

/// Applies +/-variability scaling to a subject's physiological parameters.
RrProcessParams personalize(RrProcessParams p, double variability, Rng& rng) {
  const auto jitter = [&](double v) { return v * (1.0 + rng.uniform(-variability, variability)); };
  p.mean_rr_s = jitter(p.mean_rr_s);
  p.rsa_amplitude_s = jitter(p.rsa_amplitude_s);
  p.resp_rate_hz = jitter(p.resp_rate_hz);
  p.jitter_s = jitter(p.jitter_s);
  p.drift_s = jitter(p.drift_s);
  return p;
}

GsrSynthParams personalize(GsrSynthParams p, double variability, Rng& rng) {
  const auto jitter = [&](double v) { return v * (1.0 + rng.uniform(-variability, variability)); };
  p.tonic_level_us = jitter(p.tonic_level_us);
  p.scr_rate_hz = jitter(p.scr_rate_hz);
  p.scr_amplitude_us = jitter(p.scr_amplitude_us);
  p.scr_rise_s = jitter(p.scr_rise_s);
  p.scr_decay_s = jitter(p.scr_decay_s);
  return p;
}

double blend(double value, double reference, double separation) {
  return reference + separation * (value - reference);
}

/// Pulls a level's parameters toward the medium-stress preset to shrink the
/// class separation (level_separation < 1 makes the task harder).
RrProcessParams separate(RrProcessParams p, double separation) {
  const RrProcessParams mid = rr_params_for(StressLevel::kMedium);
  p.mean_rr_s = blend(p.mean_rr_s, mid.mean_rr_s, separation);
  p.rsa_amplitude_s = blend(p.rsa_amplitude_s, mid.rsa_amplitude_s, separation);
  p.resp_rate_hz = blend(p.resp_rate_hz, mid.resp_rate_hz, separation);
  p.jitter_s = blend(p.jitter_s, mid.jitter_s, separation);
  p.drift_s = blend(p.drift_s, mid.drift_s, separation);
  return p;
}

GsrSynthParams separate(GsrSynthParams p, double separation) {
  const GsrSynthParams mid = gsr_params_for(StressLevel::kMedium);
  p.tonic_level_us = blend(p.tonic_level_us, mid.tonic_level_us, separation);
  p.scr_rate_hz = blend(p.scr_rate_hz, mid.scr_rate_hz, separation);
  p.scr_amplitude_us = blend(p.scr_amplitude_us, mid.scr_amplitude_us, separation);
  p.scr_rise_s = blend(p.scr_rise_s, mid.scr_rise_s, separation);
  return p;
}

}  // namespace

StressDataset build_stress_dataset(const StressDatasetConfig& config) {
  ensure(config.subjects >= 1, "build_stress_dataset: need at least one subject");
  ensure(config.minutes_per_level >= 2.0,
         "build_stress_dataset: need at least 2 minutes per level");
  ensure(config.level_separation > 0.0 && config.level_separation <= 1.0,
         "build_stress_dataset: level_separation must be in (0, 1]");

  StressDataset out;
  const double duration_s = config.minutes_per_level * 60.0;

  for (int subject = 0; subject < config.subjects; ++subject) {
    for (StressLevel level :
         {StressLevel::kNone, StressLevel::kMedium, StressLevel::kHigh}) {
      // Deterministic per-(subject, level) stream.
      Rng rng(config.seed * 1000003ULL +
              static_cast<std::uint64_t>(subject) * 131ULL +
              static_cast<std::uint64_t>(level));
      const RrProcessParams rr_params = personalize(
          separate(rr_params_for(level), config.level_separation),
          config.subject_variability, rng);
      const GsrSynthParams gsr_params = personalize(
          separate(gsr_params_for(level), config.level_separation),
          config.subject_variability, rng);

      const std::vector<double> rr = generate_rr_intervals(rr_params, duration_s, rng);
      const EcgSignal ecg = synthesize_ecg(rr, EcgSynthParams{}, rng);
      const GsrSignal gsr = synthesize_gsr(gsr_params, duration_s, rng);

      for (const RawFeatures& raw : extract_windows(ecg, gsr, config.window)) {
        LabeledWindow window;
        window.raw = raw;
        window.level = level;
        window.subject = subject;
        out.windows.push_back(window);
      }
    }
  }
  ensure(!out.windows.empty(), "build_stress_dataset: no windows extracted");

  std::vector<RawFeatures> all;
  all.reserve(out.windows.size());
  for (const LabeledWindow& w : out.windows) all.push_back(w.raw);
  out.normalizer = FeatureNormalizer::fit(all);

  for (const LabeledWindow& w : out.windows) {
    out.data.add(out.normalizer.apply(w.raw),
                 nn::Dataset::one_hot(static_cast<std::size_t>(w.level), 3));
  }
  return out;
}

}  // namespace iw::bio
