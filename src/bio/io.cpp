#include "bio/io.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace iw::bio {

void write_signal_csv(std::ostream& os, double fs_hz,
                      const std::vector<float>& samples,
                      const std::string& value_name) {
  ensure(fs_hz > 0.0, "write_signal_csv: bad sample rate");
  os << "time_s," << value_name << "\n";
  // Enough digits that the uniform time base survives the text round trip
  // even for long recordings.
  os << std::setprecision(12);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << static_cast<double>(i) / fs_hz << ',' << samples[i] << '\n';
  }
}

CsvSignal read_signal_csv(std::istream& is) {
  std::string line;
  ensure(static_cast<bool>(std::getline(is, line)), "read_signal_csv: empty input");
  ensure(line.find(',') != std::string::npos, "read_signal_csv: missing header");

  CsvSignal signal;
  std::vector<double> times;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t comma = line.find(',');
    ensure(comma != std::string::npos,
           "read_signal_csv: malformed row at line " + std::to_string(line_no));
    try {
      times.push_back(std::stod(line.substr(0, comma)));
      signal.samples.push_back(std::stof(line.substr(comma + 1)));
    } catch (const std::exception&) {
      fail("read_signal_csv: unparsable number at line " + std::to_string(line_no));
    }
  }
  ensure(times.size() >= 2, "read_signal_csv: need at least two samples");

  const double dt = (times.back() - times.front()) /
                    static_cast<double>(times.size() - 1);
  ensure(dt > 0.0, "read_signal_csv: non-increasing time base");
  // Tolerate text-format rounding but reject grossly non-uniform bases.
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double step = times[i] - times[i - 1];
    ensure(std::abs(step - dt) <= 0.2 * dt,
           "read_signal_csv: non-uniform time base at row " + std::to_string(i));
  }
  signal.fs_hz = 1.0 / dt;
  return signal;
}

void save_ecg_csv(std::ostream& os, const EcgSignal& signal) {
  write_signal_csv(os, signal.fs_hz, signal.samples, "ecg_mv");
}

EcgSignal load_ecg_csv(std::istream& is) {
  const CsvSignal csv = read_signal_csv(is);
  EcgSignal signal;
  signal.fs_hz = csv.fs_hz;
  signal.samples = csv.samples;
  return signal;
}

void save_gsr_csv(std::ostream& os, const GsrSignal& signal) {
  write_signal_csv(os, signal.fs_hz, signal.samples, "gsr_us");
}

GsrSignal load_gsr_csv(std::istream& is) {
  const CsvSignal csv = read_signal_csv(is);
  GsrSignal signal;
  signal.fs_hz = csv.fs_hz;
  signal.samples = csv.samples;
  return signal;
}

}  // namespace iw::bio
