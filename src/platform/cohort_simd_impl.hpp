// Shared implementation of the SIMD cohort day kernel, instantiated once per
// tier translation unit (array / SSE2 / AVX2) with the matching pack type.
//
// Bit-exactness argument. The kernel is the register-resident lane kernel of
// device.cpp (run_cohort_reg_lanes) with the per-lane loops turned into
// vector statements across W independent lanes:
//
//   * Every arithmetic statement is the same IEEE-754 expression, in the
//     same order, on the same per-lane operands as the scalar kernel.
//     Vector add/sub/mul/div are correctly rounded per lane, so each lane's
//     bits equal the scalar chain's bits. The tier TUs are compiled with
//     -ffp-contract=off, so the compiler cannot fuse a mul+add the scalar
//     kernel keeps separate (and the scalar kernel's own TU never enables
//     FMA, so neither side contracts).
//   * std::min sites map to V::stdmin, which reproduces std::min's tie
//     behaviour exactly (see simd.hpp).
//   * Scalar *skip branches* become mask+blend: the masked arithmetic runs
//     unconditionally, and select() merges the *exact bits* of the
//     would-have-skipped lanes back in. A blend is used even where the
//     arithmetic looks like a no-op identity, because it is not one in every
//     corner (e.g. the sleep drain on a lane with sleep_power_w == 0 whose
//     SoC sits one rounding ulp below zero would move the SoC; the scalar
//     kernel skips it, so the vector kernel must blend it away).
//   * The OCV interpolation picks its bracket with the same `1 + Σ(soc >
//     breakpoint)` census as lipo_ocv_at, realized as a select ladder over
//     four constant tables. The bracket *differences* are compile-time
//     constant subtractions of the same curve values the scalar code
//     subtracts at runtime — the same correctly-rounded results, never an
//     additively re-derived approximation.
//   * Detection drains, three per-pack modes:
//       - Lockstep: lanes sharing the fixed-period stream (null policy,
//         equal period) have identical event clocks by construction — equal
//         detect_t/sequence state at day start, advanced by identical
//         updates — so the whole pack's attempts fire in lockstep and the
//         attempt body vectorizes with the same mask/blend discipline.
//       - Due rounds: packs homogeneous in policy *kind* (all
//         soc-proportional, all energy-neutral, all fixed-eval, or all null
//         with differing periods) but with divergent clocks process one
//         attempt round at a time: a scalar census picks the lanes whose
//         next event fires before the pending tick (the exact engine
//         condition, FIFO ties included), the attempt body and the policy
//         interval math run as vectors, and blends confine every effect to
//         the due lanes. The built-in policy formulas are already
//         select-based straight-line arithmetic (see scheduler.hpp), so
//         they vectorize operation for operation. Lanes are independent, so
//         interleaving different lanes' attempt sequences preserves each
//         lane's own event order — the bits cannot tell.
//       - Scalar: packs mixing policy kinds (sort-boundary packs), custom
//         (opaque) policies, or an energy-neutral lane with a non-positive
//         detection energy (whose first attempt must throw exactly like the
//         scalar path) keep a per-lane scalar drain that is a verbatim copy
//         of the scalar kernel's, behind a vector "any lane due?" pre-check
//         that is a strict superset of the fire condition.
//
// The rare exact-gate evaluation (SoC inside the bisected window) and the
// policy interval math still run through the single shared scalar
// definitions (LipoBattery::stored_energy_j, policy_interval_s), exactly as
// the scalar kernel does.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "platform/day_kernel.hpp"
#include "platform/scheduler.hpp"
#include "power/battery.hpp"

namespace iw::platform::detail {

/// Per-bracket constants of the OCV curve, as compile-time values: the lower
/// breakpoint, its voltage, and the bracket differences. The differences are
/// constexpr subtractions of the same kOcvCurve values lipo_ocv_at subtracts
/// at runtime — correct rounding makes them the identical doubles.
struct OcvBracket {
  double lo_soc;
  double lo_v;
  double dsoc;
  double dv;
};

inline constexpr std::array<OcvBracket, 6> kOcvBrackets = [] {
  std::array<OcvBracket, 6> b{};
  for (std::size_t j = 0; j < 6; ++j) {
    b[j].lo_soc = pwr::detail::kOcvCurve[j].soc;
    b[j].lo_v = pwr::detail::kOcvCurve[j].voltage;
    b[j].dsoc = pwr::detail::kOcvCurve[j + 1].soc - pwr::detail::kOcvCurve[j].soc;
    b[j].dv = pwr::detail::kOcvCurve[j + 1].voltage - pwr::detail::kOcvCurve[j].voltage;
  }
  return b;
}();

/// lipo_ocv_at on W lanes. Clamp as two selects (bit-preserving, e.g. a
/// -0.0 input passes through exactly as std::clamp leaves it), bracket by
/// select ladder, then the same (soc - lo) / dsoc interpolation.
template <class V>
inline V ocv_lanes(V x) {
  using M = typename V::Mask;
  const V zero = V::broadcast(0.0);
  const V one = V::broadcast(1.0);
  x = V::select(V::lt(x, zero), zero, x);
  x = V::select(V::lt(one, x), one, x);
  V lo_soc = V::broadcast(kOcvBrackets[0].lo_soc);
  V lo_v = V::broadcast(kOcvBrackets[0].lo_v);
  V dsoc = V::broadcast(kOcvBrackets[0].dsoc);
  V dv = V::broadcast(kOcvBrackets[0].dv);
  for (std::size_t j = 1; j < 6; ++j) {
    const M m = V::gt(x, V::broadcast(kOcvBrackets[j].lo_soc));
    lo_soc = V::select(m, V::broadcast(kOcvBrackets[j].lo_soc), lo_soc);
    lo_v = V::select(m, V::broadcast(kOcvBrackets[j].lo_v), lo_v);
    dsoc = V::select(m, V::broadcast(kOcvBrackets[j].dsoc), dsoc);
    dv = V::select(m, V::broadcast(kOcvBrackets[j].dv), dv);
  }
  const V frac = (x - lo_soc) / dsoc;
  return lo_v + frac * dv;
}

/// std::clamp(x, lo, hi) per lane, in std::clamp's exact comparison order
/// (x < lo decides first, then hi < x), preserving the untouched x bits in
/// the pass-through case.
template <class V>
inline V clamp_lanes(V x, V lo, V hi) {
  return V::select(V::lt(x, lo), lo, V::select(V::lt(hi, x), hi, x));
}

/// detail::soc_proportional_interval_s on W lanes: the same select-based
/// straight-line arithmetic, with per-lane policy parameters. a/b = min/max
/// rate per minute, c/d = low/high water SoC.
template <class V>
inline V soc_proportional_lanes(V a, V b, V c, V d, V soc) {
  const V frac = (soc - c) / (d - c);
  V rate = a + frac * (b - a);
  rate = V::select(V::le(soc, c), V::broadcast(0.1) * a, rate);
  rate = V::select(V::ge(soc, d), b, rate);
  return V::broadcast(60.0) / rate;
}

/// detail::energy_neutral_interval_s on W lanes. The callers guarantee
/// need > 0 on every lane of the pack (packs violating it take the scalar
/// drain so the scalar ensure() fires exactly as before). a = margin,
/// b/c = min/max rate per minute, d = target SoC.
template <class V>
inline V energy_neutral_lanes(V a, V b, V c, V d, V soc, V intake, V need) {
  V rate = a * intake / need * V::broadcast(60.0);
  const V soc_error = soc - d;
  rate = rate * clamp_lanes<V>(V::broadcast(1.0) + soc_error, V::broadcast(0.5),
                               V::broadcast(1.5));
  rate = clamp_lanes<V>(rate, b, c);
  return V::broadcast(60.0) / rate;
}

/// One block of N = W * P register-eligible lanes through a whole day.
/// Mirrors run_cohort_reg_lanes<N> statement for statement; see the header
/// comment for the vectorization rules.
template <class V, int P>
void run_cohort_simd_block(const CohortGroupRefs& refs, const std::size_t* ids) {
  using M = typename V::Mask;
  using U = typename V::U;
  constexpr int W = V::kWidth;
  constexpr int N = W * P;
  constexpr unsigned kFull = (1u << W) - 1u;

  DayState* day[N];
  const std::uint32_t* segs[N];
  const double* intake[N];
  const DetectionPolicy* pol[N];
  PolicyEval pev[N];
  // Hoisted per-lane constants — each the exact expression the per-op scalar
  // code evaluates from the same operands (see run_cohort_reg_lanes).
  alignas(32) double cap_c[N], eff[N], tick_s[N], sleep_w[N], det_pw[N], det_dur[N];
  alignas(32) double need[N], complete[N], gate_lo[N], gate_hi[N], period[N];
  alignas(32) double peva[N], pevb[N], pevc[N], pevd[N];
  // Day state, lane-major so every pack is one contiguous vector.
  alignas(32) double soc[N], v[N], sm[N], min_soc[N], harvested[N], consumed[N];
  alignas(32) double detect_t[N];
  std::uint64_t attempted[N], completed[N], skipped[N];
  std::uint64_t dseq[N], hseq[N], nseq[N];
  std::uint8_t alive[N];

  for (int i = 0; i < N; ++i) {
    const std::size_t lane = ids[i];
    day[i] = &refs.lanes[lane];
    segs[i] = refs.seg_tables[lane];
    intake[i] = refs.intake_tables[lane];
    pol[i] = refs.policies[lane];
    pev[i] = refs.policy_evals[lane];
    peva[i] = pev[i].a;
    pevb[i] = pev[i].b;
    pevc[i] = pev[i].c;
    pevd[i] = pev[i].d;
    const DeviceConfig& cfg = *day[i]->config;
    cap_c[i] = units::mah_to_coulombs(cfg.battery.capacity_mah);
    eff[i] = cfg.battery.charge_efficiency;
    tick_s[i] = cfg.harvest_tick_s;
    sleep_w[i] = cfg.sleep_power_w;
    det_pw[i] = day[i]->detection_power_w;
    det_dur[i] = cfg.detection.duration_s;
    need[i] = day[i]->detection_need_j;
    complete[i] = day[i]->detection_complete_j;
    gate_lo[i] = day[i]->gate.lo_soc;
    gate_hi[i] = day[i]->gate.hi_soc;
    period[i] = cfg.detection_period_s;
    soc[i] = day[i]->battery.soc();
    v[i] = pwr::detail::lipo_ocv_at(soc[i]);
    sm[i] = day[i]->smoothed_intake_w;
    const DaySimulationResult& r = *day[i]->result;
    min_soc[i] = r.min_soc;
    harvested[i] = r.harvested_j;
    consumed[i] = r.consumed_j;
    attempted[i] = r.detections_attempted;
    completed[i] = r.detections_completed;
    skipped[i] = r.detections_skipped;
    detect_t[i] = refs.detect_t[lane];
    dseq[i] = refs.detect_seq[lane];
    hseq[i] = refs.harvest_seq[lane];
    nseq[i] = refs.next_seq[lane];
    alive[i] = refs.detect_alive[lane];
  }
  const double horizon = day[0]->horizon;  // group-shared by construction

  // Pack classification (see the header comment): lockstep fixed-period
  // packs drain as one clock, policy-kind-homogeneous packs drain in masked
  // due rounds, everything else drains per lane. The sleep mask is a
  // per-day constant.
  enum class PackMode : std::uint8_t { kLockstep, kRounds, kScalar };
  enum class PackPolicy : std::uint8_t { kNull, kFixedEval, kSocProp, kEnergyNeutral };
  PackMode mode[P];
  PackPolicy ppol[P];
  M sleep_m[P];
  unsigned sleep_bits[P];
  for (int p = 0; p < P; ++p) {
    const int base = p * W;
    bool lockstep = true;
    bool all_null = true;
    bool kind_uniform = true;
    bool all_need_pos = true;
    for (int w = 0; w < W; ++w) {
      const int i = base + w;
      lockstep = lockstep && pol[i] == nullptr && period[i] == period[base] &&
                 detect_t[i] == detect_t[base] && dseq[i] == dseq[base] &&
                 hseq[i] == hseq[base] && nseq[i] == nseq[base] &&
                 alive[i] == alive[base];
      all_null = all_null && pol[i] == nullptr;
      kind_uniform = kind_uniform && pol[i] != nullptr &&
                     pev[i].kind == pev[base].kind;
      all_need_pos = all_need_pos && need[i] > 0.0;
    }
    if (lockstep) {
      mode[p] = PackMode::kLockstep;
      ppol[p] = PackPolicy::kNull;
    } else if (all_null) {
      mode[p] = PackMode::kRounds;
      ppol[p] = PackPolicy::kNull;
    } else if (kind_uniform && pev[base].kind == PolicyEval::Kind::kFixedRate) {
      mode[p] = PackMode::kRounds;
      ppol[p] = PackPolicy::kFixedEval;
    } else if (kind_uniform && pev[base].kind == PolicyEval::Kind::kSocProportional) {
      mode[p] = PackMode::kRounds;
      ppol[p] = PackPolicy::kSocProp;
    } else if (kind_uniform && pev[base].kind == PolicyEval::Kind::kEnergyNeutral &&
               all_need_pos) {
      mode[p] = PackMode::kRounds;
      ppol[p] = PackPolicy::kEnergyNeutral;
    } else {
      mode[p] = PackMode::kScalar;
      ppol[p] = PackPolicy::kNull;
    }
    sleep_m[p] = V::gt(V::load(sleep_w + base), V::broadcast(0.0));
    sleep_bits[p] = V::mask_bits(sleep_m[p]);
  }

  // Verbatim copy of the scalar kernel's drain lambda (per-lane, any policy).
  const auto drain_lane = [&](int i, bool pending, double t) {
    if (alive[i] == 0) return;
    if (!(detect_t[i] <= horizon) ||
        (pending &&
         !(detect_t[i] < t || (detect_t[i] == t && dseq[i] < hseq[i])))) {
      return;
    }
    do {
      ++attempted[i];
      const double s = soc[i];
      bool has_energy;
      if (s > gate_hi[i]) {
        has_energy = true;
      } else if (s < gate_lo[i]) {
        has_energy = false;
      } else {
        day[i]->battery.restore_soc(s);
        has_energy = day[i]->battery.stored_energy_j() >= need[i];
      }
      bool fired = false;
      if (has_energy && !(s <= 0.0)) {
        const double current_a = det_pw[i] / v[i];
        const double want_c = current_a * det_dur[i];
        const double have_c = s * cap_c[i];
        const double delta_c = std::min(want_c, have_c);
        soc[i] = s - delta_c / cap_c[i];
        v[i] = pwr::detail::lipo_ocv_at(soc[i]);
        const double got = delta_c * v[i];
        consumed[i] += got;
        if (got >= complete[i]) {
          ++completed[i];
          fired = true;
        }
      }
      if (!fired) ++skipped[i];
      if (pol[i] != nullptr) {
        SchedulerState state;
        state.soc = soc[i];
        state.recent_intake_w = sm[i];
        state.detection_energy_j = need[i];
        const double interval = policy_interval_s(pev[i], *pol[i], state);
        ensure(interval > 0.0, "detection policy returned non-positive interval");
        if (detect_t[i] + interval > horizon) alive[i] = 0;
        dseq[i] = nseq[i]++;
        detect_t[i] += interval;
      } else {
        dseq[i] = nseq[i]++;
        detect_t[i] += period[i];
      }
    } while (alive[i] != 0 && detect_t[i] <= horizon &&
             (!pending ||
              detect_t[i] < t || (detect_t[i] == t && dseq[i] < hseq[i])));
  };

  // Whole-pack drain for lockstep fixed-period packs: the scalar drain with
  // lane state W-wide and both the attempt body and the stream bookkeeping
  // vectorized. Every lane's clock/sequence copies are equal by the lockstep
  // classification, so the loop conditions run on a lane-`base` scalar mirror
  // that performs the identical arithmetic (same adds on the same values)
  // while the per-lane vectors advance in integer/float SIMD.
  const auto drain_pack = [&](int p, bool pending, double t) {
    const int base = p * W;
    if (alive[base] == 0) return;
    double dtb = detect_t[base];
    if (!(dtb <= horizon) ||
        (pending && !(dtb < t || (dtb == t && dseq[base] < hseq[base])))) {
      return;
    }
    const double per_b = period[base];
    const std::uint64_t hseq_b = hseq[base];
    std::uint64_t nseq_b = nseq[base];
    std::uint64_t dseq_b = dseq[base];
    const M fullm = V::mask_from_bits(kFull);
    const V perv = V::load(period + base);
    V dt = V::load(detect_t + base);
    U attv = V::uload(attempted + base);
    U compv = V::uload(completed + base);
    U skipv = V::uload(skipped + base);
    U dsv = V::uload(dseq + base);
    U nsv = V::uload(nseq + base);
    do {
      const V s = V::load(soc + base);
      const V vv = V::load(v + base);
      // Gate: decided by SoC compares outside the bisected window, by the
      // shared exact stored-energy evaluation inside it.
      const M gt_hi = V::gt(s, V::load(gate_hi + base));
      unsigned heb = V::mask_bits(gt_hi);
      const unsigned ltb = V::mask_bits(V::lt(s, V::load(gate_lo + base)));
      const unsigned midb = kFull & ~(heb | ltb);
      M he = gt_hi;
      if (midb != 0u) {
        for (int w = 0; w < W; ++w) {
          if (((midb >> w) & 1u) == 0u) continue;
          day[base + w]->battery.restore_soc(soc[base + w]);
          if (day[base + w]->battery.stored_energy_j() >= need[base + w]) {
            heb |= 1u << w;
          }
        }
        he = V::mask_from_bits(heb);
      }
      const M dm = V::mask_and(he, V::gt(s, V::broadcast(0.0)));
      M cm = V::mask_from_bits(0u);
      if (V::mask_bits(dm) != 0u) {
        // battery.discharge(det_pw, det_dur) across the pack, blended onto
        // the lanes the scalar path would have touched.
        const V cap = V::load(cap_c + base);
        const V current_a = V::load(det_pw + base) / vv;
        const V want_c = current_a * V::load(det_dur + base);
        const V have_c = s * cap;
        const V delta_c = V::stdmin(want_c, have_c);
        const V ns = s - delta_c / cap;
        const V nv = ocv_lanes<V>(ns);
        const V got = delta_c * nv;
        const V cons = V::load(consumed + base);
        V::store(soc + base, V::select(dm, ns, s));
        V::store(v + base, V::select(dm, nv, vv));
        V::store(consumed + base, V::select(dm, cons + got, cons));
        cm = V::mask_and(dm, V::ge(got, V::load(complete + base)));
      }
      // Exactly one of completed/skipped increments per attempt.
      attv = V::uincr(attv);
      compv = V::uincr(compv, cm);
      skipv = V::uincr(skipv, V::mask_andnot(fullm, cm));
      dsv = nsv;
      nsv = V::uincr(nsv);
      dt = dt + perv;
      dseq_b = nseq_b++;
      dtb += per_b;
    } while (alive[base] != 0 && dtb <= horizon &&
             (!pending || dtb < t || (dtb == t && dseq_b < hseq_b)));
    V::store(detect_t + base, dt);
    V::ustore(attempted + base, attv);
    V::ustore(completed + base, compv);
    V::ustore(skipped + base, skipv);
    V::ustore(dseq + base, dsv);
    V::ustore(nseq + base, nsv);
  };

  // Masked due-rounds drain for policy-kind-homogeneous packs with divergent
  // clocks. The pack's whole drain state (detect_t, SoC, OCV, consumed) stays
  // in vector registers across rounds; each round is a vectorized census of
  // the per-lane fire condition (equal-time ties fall back to a scalar
  // dseq/hseq check), one vectorized attempt body blended onto the due lanes,
  // one vectorized policy-interval evaluation, and a masked stream advance.
  // Only the integer sequence/counter updates and the rare paths (mid-gate
  // window, ties, horizon kill, non-positive-interval failure) touch scalar
  // code. Repeats until no lane fires before the pending tick.
  const auto drain_rounds = [&](int p, bool pending, double t) {
    const int base = p * W;
    unsigned alive_b = 0u;
    for (int w = 0; w < W; ++w) {
      if (alive[base + w] != 0) alive_b |= 1u << w;
    }
    if (alive_b == 0u) return;
    const V tv = V::broadcast(t);
    const V hv = V::broadcast(horizon);
    const V zero = V::broadcast(0.0);
    V dt = V::load(detect_t + base);
    // Census of the exact scalar fire condition:
    //   alive && detect_t <= horizon &&
    //   (!pending || detect_t < t || (detect_t == t && dseq < hseq))
    // The strict-less and the tie split off each other exactly (le & ~lt);
    // NaN never occurs (detect_t is a finite sum of ensure()-positive
    // intervals), so ordered compares are total here.
    const auto census = [&](V dtv, unsigned ab) -> unsigned {
      const unsigned hb = V::mask_bits(V::le(dtv, hv));
      if (!pending) return ab & hb;
      const unsigned ltb = V::mask_bits(V::lt(dtv, tv));
      unsigned due = ab & hb & ltb;
      unsigned tieb = ab & hb & V::mask_bits(V::le(dtv, tv)) & ~ltb;
      while (tieb != 0u) {
        const int w = __builtin_ctz(tieb);
        tieb &= tieb - 1u;
        if (dseq[base + w] < hseq[base + w]) due |= 1u << w;
      }
      return due;
    };
    unsigned due = census(dt, alive_b);
    if (due == 0u) {
      return;
    }
    // Round-invariant pack operands (sm only changes in harvest, which never
    // interleaves with a drain call) and the register-resident drain state.
    const V glo = V::load(gate_lo + base);
    const V ghi = V::load(gate_hi + base);
    const V cap = V::load(cap_c + base);
    const V dpw = V::load(det_pw + base);
    const V ddur = V::load(det_dur + base);
    const V comp = V::load(complete + base);
    const V pa = V::load(peva + base);
    const V pb = V::load(pevb + base);
    const V pc = V::load(pevc + base);
    const V pd = V::load(pevd + base);
    const V smv = V::load(sm + base);
    const V needv = V::load(need + base);
    const V perv = V::load(period + base);
    V s = V::load(soc + base);
    V vv = V::load(v + base);
    V cons = V::load(consumed + base);
    U attv = V::uload(attempted + base);
    U compv = V::uload(completed + base);
    U skipv = V::uload(skipped + base);
    U dsv = V::uload(dseq + base);
    U nsv = V::uload(nseq + base);
    do {
      const M duem = V::mask_from_bits(due);
      const M gt_hi = V::gt(s, ghi);
      unsigned heb = V::mask_bits(gt_hi);
      unsigned midb = kFull & ~(heb | V::mask_bits(V::lt(s, glo))) & due;
      M he = gt_hi;
      if (midb != 0u) {
        // Rare exact-gate window: same shared stored-energy evaluation as the
        // scalar path, on the current register SoC.
        alignas(32) double sbuf[W];
        V::store(sbuf, s);
        do {
          const int w = __builtin_ctz(midb);
          midb &= midb - 1u;
          day[base + w]->battery.restore_soc(sbuf[w]);
          if (day[base + w]->battery.stored_energy_j() >= need[base + w]) {
            heb |= 1u << w;
          }
        } while (midb != 0u);
        he = V::mask_from_bits(heb);
      }
      const M dm = V::mask_and(V::mask_and(he, V::gt(s, zero)), duem);
      V s_after = s;
      M cm = V::mask_from_bits(0u);
      if (V::mask_bits(dm) != 0u) {
        // battery.discharge(det_pw, det_dur) across the pack, blended onto
        // the lanes the scalar path would have touched.
        const V current_a = dpw / vv;
        const V want_c = current_a * ddur;
        const V have_c = s * cap;
        const V delta_c = V::stdmin(want_c, have_c);
        const V ns = s - delta_c / cap;
        const V nv = ocv_lanes<V>(ns);
        const V got = delta_c * nv;
        s_after = V::select(dm, ns, s);
        s = s_after;
        vv = V::select(dm, nv, vv);
        cons = V::select(dm, cons + got, cons);
        cm = V::mask_and(dm, V::ge(got, comp));
      }
      // Stream bookkeeping in integer SIMD: exactly one of completed/skipped
      // increments per due lane (cm is a subset of duem), and the dseq/nseq
      // advance is a masked move. dseq stores back every round because the
      // census tie-break below reads it through the array.
      attv = V::uincr(attv, duem);
      compv = V::uincr(compv, cm);
      skipv = V::uincr(skipv, V::mask_andnot(duem, cm));
      dsv = V::uselect(duem, nsv, dsv);
      nsv = V::uincr(nsv, duem);
      V::ustore(dseq + base, dsv);
      // Next interval, vectorized per the pack's (homogeneous) policy kind.
      // Non-due lanes compute garbage-free but unused values; every effect
      // below is confined to due lanes.
      V interval = perv;
      switch (ppol[p]) {
        case PackPolicy::kNull:
          break;
        case PackPolicy::kFixedEval:
          interval = pa;
          break;
        case PackPolicy::kSocProp:
          interval = soc_proportional_lanes<V>(pa, pb, pc, pd, s_after);
          break;
        case PackPolicy::kEnergyNeutral:
          interval = energy_neutral_lanes<V>(pa, pb, pc, pd, s_after, smv,
                                             needv);
          break;
      }
      if (ppol[p] != PackPolicy::kNull) {
        // Scalar checks `interval > 0.0` per due lane; !(x > 0) also catches
        // NaN, which an ordered le-against-zero would miss.
        const unsigned okb = V::mask_bits(V::gt(interval, zero));
        if ((due & ~okb) != 0u) {
          ensure(false, "detection policy returned non-positive interval");
        }
        const unsigned killb = V::mask_bits(V::gt(dt + interval, hv)) & due;
        if (killb != 0u) {
          alive_b &= ~killb;
          for (unsigned b = killb; b != 0u; b &= b - 1u) {
            alive[base + __builtin_ctz(b)] = 0;
          }
        }
      }
      dt = V::select(duem, dt + interval, dt);
      due = census(dt, alive_b);
    } while (due != 0u);
    V::store(detect_t + base, dt);
    V::store(soc + base, s);
    V::store(v + base, vv);
    V::store(consumed + base, cons);
    V::ustore(attempted + base, attv);
    V::ustore(completed + base, compv);
    V::ustore(skipped + base, skipv);
    V::ustore(nseq + base, nsv);
  };

  const V zero = V::broadcast(0.0);
  const V one = V::broadcast(1.0);
  for (std::size_t k = 0; k < refs.num_ticks; ++k) {
    const double t = refs.times[k];
    const V tv = V::broadcast(t);
    for (int p = 0; p < P; ++p) {
      const int base = p * W;
      if (mode[p] == PackMode::kLockstep) {
        drain_pack(p, /*pending=*/true, t);
        continue;
      }
      // "Any lane due?" pre-check: detect_t <= t is a strict superset of
      // the fire condition (t <= horizon, and a lane due-with-tie-loss
      // just early-outs inside), so skipping clear lanes is exact.
      const unsigned due = V::mask_bits(V::le(V::load(detect_t + base), tv));
      if (due == 0u) continue;
      if (mode[p] == PackMode::kRounds) {
        drain_rounds(p, /*pending=*/true, t);
      } else {
        for (int w = 0; w < W; ++w) {
          if (((due >> w) & 1u) != 0u) drain_lane(base + w, /*pending=*/true, t);
        }
      }
    }
    for (int p = 0; p < P; ++p) {
      const int base = p * W;
      // harvest_tick_env across the pack; the intake comes from the shared
      // per-segment tables (the same pure evaluation as the scalar cache).
      alignas(32) double ibuf[W];
      for (int w = 0; w < W; ++w) ibuf[w] = intake[base + w][segs[base + w][k]];
      const V in = V::load(ibuf);
      V::store(sm + base,
               V::broadcast(0.9) * V::load(sm + base) + V::broadcast(0.1) * in);
      V s = V::load(soc + base);
      V vv = V::load(v + base);
      // battery.charge(intake_w, tick): the scalar kernel skips zero-intake
      // and pinned-full lanes (both proven no-op identities); here the mask
      // reproduces the skips and the blend keeps skipped lanes' exact bits.
      const M ch = V::mask_and(V::ne(in, zero), V::lt(s, one));
      if (V::mask_bits(ch) != 0u) {
        const V cap = V::load(cap_c + base);
        const V current_a = in / vv;
        const V delta_c = current_a * V::load(tick_s + base) * V::load(eff + base);
        const V ns = V::stdmin(one, s + delta_c / cap);
        const V stored_c = (ns - s) * cap;
        const V nv = ocv_lanes<V>(ns);
        const V harv = V::load(harvested + base);
        V::store(harvested + base, V::select(ch, harv + stored_c * nv, harv));
        s = V::select(ch, ns, s);
        vv = V::select(ch, nv, vv);
      }
      if (sleep_bits[p] != 0u) {
        // battery.discharge(sleep_w, tick) on the sleeping lanes (per-day
        // constant mask; must blend, not rely on a zero-power identity).
        const M sl = sleep_m[p];
        const V cap = V::load(cap_c + base);
        const V cur = V::load(sleep_w + base) / vv;
        const V want_c = cur * V::load(tick_s + base);
        const V have_c = s * cap;
        const V delta = V::stdmin(want_c, have_c);
        const V ns = s - delta / cap;
        const V nv = ocv_lanes<V>(ns);
        const V cons = V::load(consumed + base);
        V::store(consumed + base, V::select(sl, cons + delta * nv, cons));
        s = V::select(sl, ns, s);
        vv = V::select(sl, nv, vv);
      }
      V::store(soc + base, s);
      V::store(v + base, vv);
      V::store(min_soc + base, V::stdmin(V::load(min_soc + base), s));
      // hseq[i] = nseq[i]++ across the pack, in integer SIMD.
      const U nsv = V::uload(nseq + base);
      V::ustore(hseq + base, nsv);
      V::ustore(nseq + base, V::uincr(nsv));
    }
  }
  for (int p = 0; p < P; ++p) {
    if (mode[p] == PackMode::kLockstep) {
      drain_pack(p, /*pending=*/false, 0.0);
    } else if (mode[p] == PackMode::kRounds) {
      drain_rounds(p, /*pending=*/false, 0.0);
    } else {
      for (int w = 0; w < W; ++w) drain_lane(p * W + w, /*pending=*/false, 0.0);
    }
  }

  for (int i = 0; i < N; ++i) {
    const std::size_t lane = ids[i];
    refs.detect_t[lane] = detect_t[i];
    refs.detect_seq[lane] = dseq[i];
    refs.harvest_seq[lane] = hseq[i];
    refs.next_seq[lane] = nseq[i];
    refs.detect_alive[lane] = alive[i];
    day[i]->smoothed_intake_w = sm[i];
    day[i]->battery.restore_soc(soc[i]);
    DaySimulationResult& r = *day[i]->result;
    r.harvested_j = harvested[i];
    r.consumed_j = consumed[i];
    r.min_soc = min_soc[i];
    r.detections_attempted = attempted[i];
    r.detections_completed = completed[i];
    r.detections_skipped = skipped[i];
    day[i]->finish();
  }
}

/// Consumes register-eligible lanes in blocks of 16/8/4(/2), widest first,
/// mirroring the scalar ladder; returns the number of lanes consumed (a
/// multiple of the pack width — the tail takes the scalar ladder).
template <class V>
std::size_t run_cohort_simd_ladder(const CohortGroupRefs& refs) {
  constexpr std::size_t W = static_cast<std::size_t>(V::kWidth);
  static_assert(W == 2 || W == 4, "pack widths supported by the ladder");
  const std::size_t n = refs.num_reg_lanes;
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    run_cohort_simd_block<V, static_cast<int>(16 / W)>(refs, refs.lane_ids + j);
  }
  if (j + 8 <= n) {
    run_cohort_simd_block<V, static_cast<int>(8 / W)>(refs, refs.lane_ids + j);
    j += 8;
  }
  if (j + 4 <= n) {
    run_cohort_simd_block<V, static_cast<int>(4 / W)>(refs, refs.lane_ids + j);
    j += 4;
  }
  if constexpr (W == 2) {
    if (j + 2 <= n) {
      run_cohort_simd_block<V, 1>(refs, refs.lane_ids + j);
      j += 2;
    }
  }
  return j;
}

}  // namespace iw::platform::detail
