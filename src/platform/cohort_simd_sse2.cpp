// SSE2 tier of the SIMD cohort kernel (x86-64 baseline, width 2).
#include "platform/cohort_simd.hpp"
#include "platform/cohort_simd_impl.hpp"

namespace iw::platform::detail {

#if defined(__SSE2__)
std::size_t run_cohort_group_simd_sse2(const CohortGroupRefs& refs) {
  return run_cohort_simd_ladder<simd::f64x2>(refs);
}
#else
// Non-x86 target: the dispatcher never selects this tier (tier_usable is
// false), but the symbol must exist.
std::size_t run_cohort_group_simd_sse2(const CohortGroupRefs&) { return 0; }
#endif

}  // namespace iw::platform::detail
