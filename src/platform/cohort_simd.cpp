#include "platform/cohort_simd.hpp"

#include "common/simd.hpp"
#include "platform/day_kernel.hpp"

namespace iw::platform::detail {

std::size_t run_cohort_group_simd(const CohortGroupRefs& refs) {
#if defined(IW_SIMD_ENABLED)
  switch (simd::active_tier()) {
    case simd::Tier::kAvx2:
      return run_cohort_group_simd_avx2(refs);
    case simd::Tier::kSse2:
      return run_cohort_group_simd_sse2(refs);
    case simd::Tier::kArray:
      return run_cohort_group_simd_array(refs);
    case simd::Tier::kOff:
      break;
  }
#else
  (void)refs;
#endif
  return 0;
}

}  // namespace iw::platform::detail
