// Energy-aware detection scheduling policies.
//
// Section II of the paper: "The wearable device ... periodically and
// opportunistically acquires information from the sensors according to the
// available energy", and power management must "opportunistically take
// advantage of periods of overabundant energy and survive intervals when the
// system is starving". These policies implement that behaviour: given the
// battery state and the recent harvest intake they choose the next detection
// interval.
#pragma once

#include <memory>
#include <string>

namespace iw::platform {

/// Inputs a policy may use when choosing the next detection interval.
struct SchedulerState {
  double soc = 0.5;                  // battery state of charge [0,1]
  double recent_intake_w = 0.0;      // smoothed harvest intake
  double detection_energy_j = 0.0;   // cost of one detection
};

/// Strategy interface: returns the time until the next detection attempt.
class DetectionPolicy {
 public:
  virtual ~DetectionPolicy() = default;
  virtual std::string name() const = 0;
  virtual double next_interval_s(const SchedulerState& state) const = 0;
};

/// Fixed-rate baseline: one detection every `period_s`, regardless of energy.
class FixedRatePolicy final : public DetectionPolicy {
 public:
  explicit FixedRatePolicy(double period_s);
  std::string name() const override { return "fixed-rate"; }
  double next_interval_s(const SchedulerState& state) const override;

 private:
  double period_s_;
};

/// SoC-proportional: interpolates the rate between `min_per_min` (at the
/// low-water SoC) and `max_per_min` (at the high-water SoC); below the
/// low-water mark it throttles to a survival rate.
class SocProportionalPolicy final : public DetectionPolicy {
 public:
  SocProportionalPolicy(double min_per_min, double max_per_min,
                        double low_water_soc = 0.15, double high_water_soc = 0.80);
  std::string name() const override { return "soc-proportional"; }
  double next_interval_s(const SchedulerState& state) const override;

 private:
  double min_per_min_, max_per_min_, low_water_soc_, high_water_soc_;
};

/// Energy-neutral: spends what comes in. Rate = recent intake / detection
/// cost, scaled by a margin < 1, clamped to [min, max] detections/minute;
/// adds an SoC correction that spends surplus above the target SoC and
/// saves below it.
class EnergyNeutralPolicy final : public DetectionPolicy {
 public:
  EnergyNeutralPolicy(double margin = 0.9, double min_per_min = 0.2,
                      double max_per_min = 60.0, double target_soc = 0.5);
  std::string name() const override { return "energy-neutral"; }
  double next_interval_s(const SchedulerState& state) const override;

 private:
  double margin_, min_per_min_, max_per_min_, target_soc_;
};

}  // namespace iw::platform
