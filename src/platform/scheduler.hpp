// Energy-aware detection scheduling policies.
//
// Section II of the paper: "The wearable device ... periodically and
// opportunistically acquires information from the sensors according to the
// available energy", and power management must "opportunistically take
// advantage of periods of overabundant energy and survive intervals when the
// system is starving". These policies implement that behaviour: given the
// battery state and the recent harvest intake they choose the next detection
// interval.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace iw::platform {

/// Inputs a policy may use when choosing the next detection interval.
struct SchedulerState {
  double soc = 0.5;                  // battery state of charge [0,1]
  double recent_intake_w = 0.0;      // smoothed harvest intake
  double detection_energy_j = 0.0;   // cost of one detection
};

/// Closed-form snapshot of a built-in policy, for inline evaluation inside
/// hot simulation loops (the cohort day kernel fires millions of detections;
/// a virtual call per detection is measurable). `kOpaque` means "not a
/// built-in — keep calling next_interval_s virtually"; custom policies never
/// have to opt in, they just stay on the virtual path.
struct PolicyEval {
  enum class Kind { kOpaque, kFixedRate, kSocProportional, kEnergyNeutral };
  Kind kind = Kind::kOpaque;
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;  // meaning depends on kind
};

namespace detail {

// The single definition of each built-in policy's arithmetic. Both the
// virtual next_interval_s overrides (scheduler.cpp) and the inline fast
// dispatch below call these, so the two paths cannot drift apart — they are
// bit-identical by construction, not by discipline.

inline double soc_proportional_interval_s(double min_per_min, double max_per_min,
                                          double low_water_soc,
                                          double high_water_soc, double soc) {
  // Written as selects over unconditionally-computed arms (rather than an
  // if/else chain) so the compiler can emit branchless code: which region a
  // lane's SoC falls in is data-dependent, and in the cohort kernel's
  // per-detection loop a mispredicted region branch flushes the independent
  // work of neighbouring lanes. Every arm is pure, the thresholds guarantee
  // low < high (no division hazard), and each select returns exactly the
  // value the branching form computed in that region, so results are
  // bit-identical.
  const double frac = (soc - low_water_soc) / (high_water_soc - low_water_soc);
  double rate_per_min = min_per_min + frac * (max_per_min - min_per_min);
  // Survival mode below the low-water mark: one tenth of the minimum rate.
  rate_per_min = soc <= low_water_soc ? 0.1 * min_per_min : rate_per_min;
  rate_per_min = soc >= high_water_soc ? max_per_min : rate_per_min;
  return 60.0 / rate_per_min;
}

inline double energy_neutral_interval_s(double margin, double min_per_min,
                                        double max_per_min, double target_soc,
                                        const SchedulerState& state) {
  ensure(state.detection_energy_j > 0.0,
         "EnergyNeutralPolicy: detection energy must be positive");
  // Sustainable rate from the smoothed intake.
  double rate_per_min =
      margin * state.recent_intake_w / state.detection_energy_j * 60.0;
  // SoC correction: up to +/-50% depending on distance from the target.
  const double soc_error = state.soc - target_soc;
  rate_per_min *= std::clamp(1.0 + soc_error, 0.5, 1.5);
  rate_per_min = std::clamp(rate_per_min, min_per_min, max_per_min);
  return 60.0 / rate_per_min;
}

}  // namespace detail

/// Strategy interface: returns the time until the next detection attempt.
class DetectionPolicy {
 public:
  virtual ~DetectionPolicy() = default;
  virtual std::string name() const = 0;
  virtual double next_interval_s(const SchedulerState& state) const = 0;
  /// Built-in policies return their closed-form snapshot; the default keeps
  /// custom policies on the virtual path (see PolicyEval).
  virtual PolicyEval fast_eval() const { return PolicyEval{}; }
};

/// Evaluates a policy through its snapshot when it has one, falling back to
/// the virtual call otherwise. Bit-identical to `policy.next_interval_s(state)`
/// in every case: the snapshot arms run the same detail:: functions the
/// virtual overrides run.
inline double policy_interval_s(const PolicyEval& eval,
                                const DetectionPolicy& policy,
                                const SchedulerState& state) {
  switch (eval.kind) {
    case PolicyEval::Kind::kFixedRate:
      return eval.a;
    case PolicyEval::Kind::kSocProportional:
      return detail::soc_proportional_interval_s(eval.a, eval.b, eval.c, eval.d,
                                                 state.soc);
    case PolicyEval::Kind::kEnergyNeutral:
      return detail::energy_neutral_interval_s(eval.a, eval.b, eval.c, eval.d,
                                               state);
    case PolicyEval::Kind::kOpaque:
      break;
  }
  return policy.next_interval_s(state);
}

/// Fixed-rate baseline: one detection every `period_s`, regardless of energy.
class FixedRatePolicy final : public DetectionPolicy {
 public:
  explicit FixedRatePolicy(double period_s);
  std::string name() const override { return "fixed-rate"; }
  double next_interval_s(const SchedulerState& state) const override;
  PolicyEval fast_eval() const override {
    return {PolicyEval::Kind::kFixedRate, period_s_, 0.0, 0.0, 0.0};
  }

 private:
  double period_s_;
};

/// SoC-proportional: interpolates the rate between `min_per_min` (at the
/// low-water SoC) and `max_per_min` (at the high-water SoC); below the
/// low-water mark it throttles to a survival rate.
class SocProportionalPolicy final : public DetectionPolicy {
 public:
  SocProportionalPolicy(double min_per_min, double max_per_min,
                        double low_water_soc = 0.15, double high_water_soc = 0.80);
  std::string name() const override { return "soc-proportional"; }
  double next_interval_s(const SchedulerState& state) const override;
  PolicyEval fast_eval() const override {
    return {PolicyEval::Kind::kSocProportional, min_per_min_, max_per_min_,
            low_water_soc_, high_water_soc_};
  }

 private:
  double min_per_min_, max_per_min_, low_water_soc_, high_water_soc_;
};

/// Energy-neutral: spends what comes in. Rate = recent intake / detection
/// cost, scaled by a margin < 1, clamped to [min, max] detections/minute;
/// adds an SoC correction that spends surplus above the target SoC and
/// saves below it.
class EnergyNeutralPolicy final : public DetectionPolicy {
 public:
  EnergyNeutralPolicy(double margin = 0.9, double min_per_min = 0.2,
                      double max_per_min = 60.0, double target_soc = 0.5);
  std::string name() const override { return "energy-neutral"; }
  double next_interval_s(const SchedulerState& state) const override;
  PolicyEval fast_eval() const override {
    return {PolicyEval::Kind::kEnergyNeutral, margin_, min_per_min_,
            max_per_min_, target_soc_};
  }

 private:
  double margin_, min_per_min_, max_per_min_, target_soc_;
};

}  // namespace iw::platform
