#include "platform/cohort_day.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {

// The merge-loop semantics here mirror fast_day.cpp's run_fast exactly — see
// the bit-exactness notes there. The only structural difference is that the
// harvest stream is materialized up front (the Shape's tick times, the same
// `t += tick` accumulation) so that N lanes sharing a tick grid can walk it
// together: per tick, each lane first drains every detection event the engine
// would pop before that tick (strictly earlier time, or coincident with an
// earlier push sequence), then fires the tick. After the last tick the
// detection stream has no harvest event left to compare against and simply
// runs out to the horizon.

const CohortDayState::Shape& CohortDayState::shape_for(const hv::DayProfile& profile,
                                                       double tick_s,
                                                       double horizon) {
  for (const auto& shape : shapes_) {
    if (shape->tick_s == tick_s && shape->horizon == horizon &&
        shape->durations.size() == profile.size() &&
        std::equal(shape->durations.begin(), shape->durations.end(),
                   profile.begin(),
                   [](double d, const hv::EnvironmentSegment& seg) {
                     return d == seg.duration_s;
                   })) {
      return *shape;
    }
  }
  auto shape = std::make_unique<Shape>();
  shape->tick_s = tick_s;
  shape->horizon = horizon;
  shape->durations.reserve(profile.size());
  for (const hv::EnvironmentSegment& seg : profile) {
    shape->durations.push_back(seg.duration_s);
  }
  // The engine accumulates tick times as `t += tick_s` from an initial
  // `0 + tick_s` — one rounded add per tick, reproduced verbatim so the
  // sampled phase matches the scalar paths to the last bit. Each tick samples
  // the segment at the middle of the elapsed interval, exactly the expression
  // DayState::harvest_tick evaluates.
  shape->seg_used.assign(profile.size(), 0);
  for (double t = tick_s; t <= horizon; t += tick_s) {
    shape->times.push_back(t);
    const auto seg =
        static_cast<std::uint32_t>(detail::segment_index_at(profile, t - tick_s / 2.0));
    shape->segs.push_back(seg);
    shape->seg_used[seg] = 1;
  }
  shapes_.push_back(std::move(shape));
  return *shapes_.back();
}

void CohortDayState::reserve_lanes(std::size_t n) {
  lanes_.reserve(n);
  policy_.reserve(n);
  policy_eval_.reserve(n);
  seg_table_.reserve(n);
  intake_store_.reserve(n);
  intake_table_.reserve(n);
  reg_ok_.reserve(n);
  detect_t_.reserve(n);
  detect_seq_.reserve(n);
  harvest_seq_.reserve(n);
  next_seq_.reserve(n);
  detect_alive_.reserve(n);
}

void CohortDayState::run_day(std::span<const CohortMember> members) {
  const std::size_t n = members.size();
  lanes_.resize(std::max(lanes_.size(), n));
  policy_.resize(std::max(policy_.size(), n));
  policy_eval_.resize(std::max(policy_eval_.size(), n));
  seg_table_.resize(std::max(seg_table_.size(), n));
  intake_store_.resize(std::max(intake_store_.size(), n));
  intake_table_.resize(std::max(intake_table_.size(), n));
  reg_ok_.resize(std::max(reg_ok_.size(), n));
  detect_t_.resize(std::max(detect_t_.size(), n));
  detect_seq_.resize(std::max(detect_seq_.size(), n));
  harvest_seq_.resize(std::max(harvest_seq_.size(), n));
  next_seq_.resize(std::max(next_seq_.size(), n));
  detect_alive_.resize(std::max(detect_alive_.size(), n));
  // Groups persist across runs (capacity reuse); only their lane lists reset.
  // A retained group's shape pointer may come from an earlier run, but any
  // shape with the same (tick, horizon) key has bit-identical times — they
  // are the same `t += tick` accumulation.
  for (ClockGroup& g : groups_) g.lanes.clear();

  for (std::size_t i = 0; i < n; ++i) {
    const CohortMember& m = members[i];
    ensure(m.config != nullptr && m.harvester != nullptr && m.profile != nullptr &&
               m.result != nullptr,
           "CohortDayState: member with null pointer");
    *m.result = DaySimulationResult{};
    lanes_[i].init(*m.config, *m.harvester, *m.profile, *m.result, &gate_cache_);
    policy_[i] = m.policy;
    policy_eval_[i] = m.policy != nullptr ? m.policy->fast_eval() : PolicyEval{};
    // The engine schedules the harvest stream first, the detection stream
    // second — sequence numbers 0 and 1, then fire order.
    detect_t_[i] = m.config->detection_period_s;
    harvest_seq_[i] = 0;
    detect_seq_[i] = 1;
    next_seq_[i] = 2;
    detect_alive_[i] = 1;

    const Shape& shape =
        shape_for(*m.profile, m.config->harvest_tick_s, lanes_[i].horizon);
    seg_table_[i] = shape.segs.data();
    // Per-lane per-segment intake table for the register-resident day loop:
    // the same pure harvester evaluation the scalar per-segment cache makes
    // on first visit, precomputed for every segment the tick grid samples.
    // A lane qualifies for the register path only when the whole day is
    // branch-free straight-line arithmetic: no trace recording, and every
    // charge/discharge the day can fire has provably valid (non-negative)
    // inputs — anything else takes the general sweep, which preserves the
    // scalar path's exact behaviour including its ensure() failures.
    std::vector<double>& intakes = intake_store_[i];
    intakes.assign(shape.durations.size(), 0.0);
    bool reg_ok = !m.config->record_trace && lanes_[i].detection_power_w >= 0.0 &&
                  m.config->detection.duration_s >= 0.0;
    for (std::size_t s = 0; s < shape.durations.size(); ++s) {
      if (shape.seg_used[s] == 0) continue;
      const double w = m.harvester->intake_w((*m.profile)[s].env);
      intakes[s] = w;
      if (!(w >= 0.0)) reg_ok = false;
    }
    intake_table_[i] = intakes.data();
    reg_ok_[i] = reg_ok ? 1 : 0;
    ClockGroup* group = nullptr;
    for (ClockGroup& g : groups_) {
      if (g.tick_s == shape.tick_s && g.horizon == shape.horizon) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups_.push_back(ClockGroup{shape.tick_s, shape.horizon, &shape, {}});
      group = &groups_.back();
    }
    group->lanes.push_back(i);
  }

  for (ClockGroup& group : groups_) {
    if (group.lanes.empty()) continue;
    // Partition register-eligible lanes first, then sweep same-policy lanes
    // back to back: the drain loop's dispatch and interval arithmetic take
    // the same branches in runs instead of alternating per lane. Null-policy
    // lanes (the fixed periodic stream) sort before everything else and
    // cluster by period, so the SIMD tier's packs of adjacent lanes share
    // one lockstep detection clock and drain as whole vectors. Policy lanes
    // cluster by period too: a policy's rate band derives from its period,
    // so same-period packs attempt at similar rates and the masked due
    // rounds run near-full instead of idling on the slow lanes (detect_t_
    // is seeded to the period at this point — see the member init above). Pure
    // processing-order change — lanes are mutually independent, so each
    // lane's own event sequence (and therefore its bits) is untouched; the
    // stable sort keeps it deterministic.
    std::stable_sort(group.lanes.begin(), group.lanes.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (reg_ok_[a] != reg_ok_[b]) return reg_ok_[a] > reg_ok_[b];
                       const int ka = policy_[a] == nullptr
                                          ? -1
                                          : static_cast<int>(policy_eval_[a].kind);
                       const int kb = policy_[b] == nullptr
                                          ? -1
                                          : static_cast<int>(policy_eval_[b].kind);
                       if (ka != kb) return ka < kb;
                       return detect_t_[a] < detect_t_[b];
                     });
    std::size_t num_reg = 0;
    while (num_reg < group.lanes.size() && reg_ok_[group.lanes[num_reg]] != 0) {
      ++num_reg;
    }
    detail::CohortGroupRefs refs;
    refs.lanes = lanes_.data();
    refs.lane_ids = group.lanes.data();
    refs.num_lanes = group.lanes.size();
    refs.num_reg_lanes = num_reg;
    refs.times = group.shape->times.data();
    refs.num_ticks = group.shape->times.size();
    refs.seg_tables = seg_table_.data();
    refs.intake_tables = intake_table_.data();
    refs.policies = policy_.data();
    refs.policy_evals = policy_eval_.data();
    refs.detect_t = detect_t_.data();
    refs.detect_seq = detect_seq_.data();
    refs.harvest_seq = harvest_seq_.data();
    refs.next_seq = next_seq_.data();
    refs.detect_alive = detect_alive_.data();
    detail::run_cohort_group(refs);
  }
}

}  // namespace iw::platform
