#include "platform/firmware.hpp"

#include "ble/ble.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "power/processor_power.hpp"
#include "sensors/acquisition.hpp"

namespace iw::platform {

const char* to_string(FirmwareMode mode) {
  switch (mode) {
    case FirmwareMode::kSleep: return "sleep";
    case FirmwareMode::kDataAcquisition: return "data acquisition";
    case FirmwareMode::kProcessing: return "processing";
    case FirmwareMode::kRawStreaming: return "raw streaming";
    case FirmwareMode::kTransmit: return "transmit";
  }
  return "?";
}

ModePowerTable ModePowerTable::infiniwolf_defaults() {
  ModePowerTable table;
  const sensors::AcquisitionPlan acq = sensors::stress_detection_acquisition();
  const ble::BleLink ble;
  // Sleep: Nordic system-off class + fuel gauge + AFE leakage.
  table.power_w[static_cast<std::size_t>(FirmwareMode::kSleep)] = units::from_uw(6.0);
  // Acquisition: AFEs on, MCU mostly idle waiting for samples.
  table.power_w[static_cast<std::size_t>(FirmwareMode::kDataAcquisition)] =
      acq.power_w() + units::from_uw(15.0);
  // Processing: 8-core cluster active.
  table.power_w[static_cast<std::size_t>(FirmwareMode::kProcessing)] =
      pwr::mr_wolf_cluster_multi8().active_power_w;
  // Raw streaming: AFEs + sustained BLE stream of the raw samples.
  table.power_w[static_cast<std::size_t>(FirmwareMode::kRawStreaming)] =
      acq.power_w() + ble.streaming_power_w(acq.bytes() / acq.duration_s);
  // Transmit: radio burst for a notification.
  table.power_w[static_cast<std::size_t>(FirmwareMode::kTransmit)] =
      0.5 * (5.3e-3 + 5.4e-3) * 3.0;
  return table;
}

FirmwareStateMachine::FirmwareStateMachine(ModePowerTable table, FirmwareMode initial)
    : table_(table), mode_(initial) {
  for (double p : table_.power_w) ensure(p >= 0.0, "ModePowerTable: negative power");
}

bool FirmwareStateMachine::transition_allowed(FirmwareMode from, FirmwareMode to) {
  using M = FirmwareMode;
  if (from == to) return true;
  switch (from) {
    case M::kSleep: return to == M::kDataAcquisition || to == M::kRawStreaming;
    case M::kDataAcquisition: return to == M::kProcessing || to == M::kSleep;
    case M::kProcessing: return to == M::kTransmit || to == M::kSleep;
    case M::kRawStreaming: return to == M::kSleep;
    case M::kTransmit: return to == M::kSleep;
  }
  return false;
}

void FirmwareStateMachine::run_for(double duration_s) {
  ensure(duration_s >= 0.0, "FirmwareStateMachine::run_for: negative duration");
  const std::size_t m = static_cast<std::size_t>(mode_);
  energy_j_[m] += table_.power_w[m] * duration_s;
  time_s_[m] += duration_s;
  now_s_ += duration_s;
}

void FirmwareStateMachine::transition(FirmwareMode next) {
  ensure(transition_allowed(mode_, next),
         std::string("illegal firmware transition: ") + to_string(mode_) + " -> " +
             to_string(next));
  mode_ = next;
}

double FirmwareStateMachine::total_energy_j() const {
  double total = 0.0;
  for (double e : energy_j_) total += e;
  return total;
}

double FirmwareStateMachine::mode_energy_j(FirmwareMode mode) const {
  return energy_j_[static_cast<std::size_t>(mode)];
}

double FirmwareStateMachine::mode_time_s(FirmwareMode mode) const {
  return time_s_[static_cast<std::size_t>(mode)];
}

double detection_cycle_energy_j(FirmwareStateMachine& fsm, double acquire_s,
                                double process_s, double transmit_s) {
  const double before = fsm.total_energy_j();
  fsm.transition(FirmwareMode::kDataAcquisition);
  fsm.run_for(acquire_s);
  fsm.transition(FirmwareMode::kProcessing);
  fsm.run_for(process_s);
  fsm.transition(FirmwareMode::kTransmit);
  fsm.run_for(transmit_s);
  fsm.transition(FirmwareMode::kSleep);
  return fsm.total_energy_j() - before;
}

}  // namespace iw::platform
