// Structure-of-arrays cohort day kernel: many device-days in lockstep.
//
// The scalar fast path (fast_day.hpp) replays one device-day at a time, so
// every day re-derives the detection-gate window (~30 OCV-curve
// integrations) and every harvest tick re-runs the fmod-and-scan segment
// lookup — per-device fixed costs that dominate fleet-scale runs where
// thousands of devices share a handful of profile shapes and one battery
// spec. The cohort kernel advances N devices together through the two-stream
// merge loop (harvest ticks / detection attempts / policy intervals) and
// hoists everything shape-shared out of the per-device path:
//
//   * One tick→segment table per profile *shape* (segment durations + tick
//     grid), computed once and shared across every device and simulated day
//     on that shape — each device's per-tick segment lookup becomes an array
//     read feeding the same per-segment intake cache the scalar path keeps.
//   * One detection-gate window per (battery spec, detection cost) pair —
//     the bisection runs once per cohort lifetime instead of once per
//     device-day.
//   * Lanes sharing a tick grid advance tick-by-tick in lockstep: the outer
//     loop walks the shared tick times, the inner loop sweeps the lane
//     arrays, draining each lane's due detections (engine event order,
//     including FIFO tie-breaking) before its tick fires.
//
// Bit-exactness contract: per device, every floating-point operation is the
// same operation in the same order as the scalar fast path (and transitively
// the discrete-event engine, the oracle) — the cohort only re-times *when*
// the shared day_kernel hooks fire, never what they compute. Pinned by
// tests/platform/test_cohort_day.cpp.
//
// All per-run buffers and both caches live in the CohortDayState and are
// reused across run_day calls, so a warmed-up cohort allocates nothing. One
// CohortDayState per worker thread; it is not thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "harvest/harvester.hpp"
#include "platform/day_kernel.hpp"
#include "platform/device.hpp"

namespace iw::platform {

class DetectionPolicy;  // scheduler.hpp

/// One device-day in a cohort. All pointers must outlive run_day; `result`
/// is overwritten (the cohort equivalent of the scalar paths returning a
/// fresh DaySimulationResult). Members must not share `result` slots.
struct CohortMember {
  const DeviceConfig* config = nullptr;
  const hv::DualSourceHarvester* harvester = nullptr;
  const hv::DayProfile* profile = nullptr;
  /// Null: the fixed periodic detection stream (simulate_day_fast).
  /// Non-null: the policy-scheduled stream (simulate_day_fast_with_policy).
  const DetectionPolicy* policy = nullptr;
  DaySimulationResult* result = nullptr;
};

class CohortDayState {
 public:
  CohortDayState() = default;

  /// Simulates one day for every member, bit-identical per member to the
  /// scalar `simulate_day_fast[_with_policy]` on the same inputs. Members
  /// may mix configs, profiles, policies and harvesters freely; lanes
  /// sharing a tick grid (harvest tick, horizon) advance in lockstep.
  void run_day(std::span<const CohortMember> members);

  /// Pre-sizes every per-lane array for cohorts of up to `n` members, so a
  /// long-running driver (the longitudinal shard runner advances the same
  /// cohort for months of simulated days) pays the growth once up front
  /// instead of across its first day's run_day calls. Purely an allocation
  /// hint: run_day grows the arrays on demand regardless.
  void reserve_lanes(std::size_t n);

  /// Cache introspection (tests / diagnostics).
  std::size_t shape_cache_size() const { return shapes_.size(); }
  std::size_t gate_cache_size() const { return gate_cache_.size(); }

 private:
  /// Tick schedule of one profile shape: the engine's accumulated tick times
  /// plus the profile segment index each tick samples. Shared by every lane
  /// (and every run_day) whose profile has these segment durations on this
  /// tick grid.
  struct Shape {
    double tick_s = 0.0;
    double horizon = 0.0;
    std::vector<double> durations;
    std::vector<double> times;
    std::vector<std::uint32_t> segs;
    /// seg_used[s] != 0 iff some tick samples segment s — the register-path
    /// intake tables only evaluate the harvester on segments the scalar path
    /// would actually visit (zero-length segments are never sampled).
    std::vector<std::uint8_t> seg_used;
  };

  /// Lanes sharing one tick grid, advanced tick-by-tick together.
  struct ClockGroup {
    double tick_s = 0.0;
    double horizon = 0.0;
    const Shape* shape = nullptr;  // any shape of the group: times coincide
    std::vector<std::size_t> lanes;
  };

  const Shape& shape_for(const hv::DayProfile& profile, double tick_s,
                         double horizon);

  // Shared caches (persist across run_day calls).
  std::vector<std::unique_ptr<Shape>> shapes_;
  detail::DetectionGateCache gate_cache_;

  // Per-lane state, parallel arrays indexed by member position. The physics
  // lane (battery, smoother, intake cache, gate) is the day_kernel's
  // DayState — kept whole so that every floating-point mutation stays inside
  // the kernel's single translation unit — while the merge-loop scheduling
  // state is split into flat arrays for the lockstep sweep.
  std::vector<detail::DayState> lanes_;
  std::vector<const DetectionPolicy*> policy_;
  std::vector<PolicyEval> policy_eval_;
  std::vector<const std::uint32_t*> seg_table_;
  /// Per-lane per-segment harvester intake (NaN-free only on used segments)
  /// plus the register-path eligibility verdict; see run_day.
  std::vector<std::vector<double>> intake_store_;
  std::vector<const double*> intake_table_;
  std::vector<std::uint8_t> reg_ok_;
  std::vector<double> detect_t_;
  std::vector<std::uint64_t> detect_seq_;
  std::vector<std::uint64_t> harvest_seq_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<std::uint8_t> detect_alive_;

  std::vector<ClockGroup> groups_;
};

}  // namespace iw::platform
