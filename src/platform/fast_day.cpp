#include "platform/fast_day.hpp"

#include <cstdint>

#include "platform/day_kernel.hpp"

namespace iw::platform {
namespace {

// Replays the engine path's event schedule without the engine. The engine
// orders events by (time, push sequence number) — FIFO at coincident times —
// and each of the two streams (harvest tick, detection) has at most one
// pending event, pushed either at setup or during the stream's previous
// firing. So the whole priority queue reduces to two (next_time, push_seq)
// pairs and a merge loop.
//
// Bit-exactness notes, all mirroring src/sim/engine.cpp + device.cpp:
//  * Next-fire times accumulate exactly like the engine's `now_ + period`
//    (`t += period` from an initial `0 + period`), never `k * period`, so the
//    sampled environment phase matches to the last bit.
//  * Ties compare push sequence numbers assigned in fire order, which is the
//    engine's behaviour: e.g. with a 60 s tick and a 60 s detection period
//    the harvest tick always fires first (it was scheduled first and
//    re-pushes during its own firing, before the detection pops), while with
//    a 90 s period the detection's event at t=180 was pushed at t=90, before
//    the harvest's t=180 event was pushed at t=120 — detection first.
//  * Sequence numbers are only compared between the two pending events, so
//    consuming one on a firing that the engine would not re-push (t at the
//    horizon, or a policy interval overshooting it) cannot reorder anything:
//    that stream is never compared again.
//  * Events the engine pops past the horizon are no-ops there (every action
//    guards on `t > horizon`) and are simply not generated here.
DaySimulationResult run_fast(const DeviceConfig& config,
                             const hv::DualSourceHarvester& harvester,
                             const hv::DayProfile& profile,
                             const DetectionPolicy* policy) {
  DaySimulationResult result;
  detail::DayState day(config, harvester, profile, result);
  const double horizon = day.horizon;

  double harvest_t = config.harvest_tick_s;     // scheduled first at setup
  double detect_t = config.detection_period_s;  // scheduled second
  std::uint64_t harvest_seq = 0;
  std::uint64_t detect_seq = 1;
  std::uint64_t next_seq = 2;
  bool detect_alive = true;  // a policy can retire its stream before the horizon

  while (true) {
    const bool harvest_due = harvest_t <= horizon;
    const bool detect_due = detect_alive && detect_t <= horizon;
    if (!harvest_due && !detect_due) break;
    const bool harvest_first =
        harvest_due && (!detect_due || harvest_t < detect_t ||
                        (harvest_t == detect_t && harvest_seq < detect_seq));
    if (harvest_first) {
      day.harvest_tick(harvest_t);
      harvest_seq = next_seq++;
      harvest_t += config.harvest_tick_s;
    } else {
      day.attempt_detection(detect_t);
      if (policy != nullptr) {
        const double interval = day.policy_interval(*policy, detect_t);
        if (detect_t + interval > horizon) detect_alive = false;
        detect_seq = next_seq++;
        detect_t += interval;
      } else {
        detect_seq = next_seq++;
        detect_t += config.detection_period_s;
      }
    }
  }

  day.finish();
  return result;
}

}  // namespace

DaySimulationResult simulate_day_fast(const DeviceConfig& config,
                                      const hv::DualSourceHarvester& harvester,
                                      const hv::DayProfile& profile) {
  return run_fast(config, harvester, profile, nullptr);
}

DaySimulationResult simulate_day_fast_with_policy(
    const DeviceConfig& config, const hv::DualSourceHarvester& harvester,
    const hv::DayProfile& profile, const DetectionPolicy& policy) {
  return run_fast(config, harvester, profile, &policy);
}

}  // namespace iw::platform
