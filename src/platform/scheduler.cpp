#include "platform/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iw::platform {

FixedRatePolicy::FixedRatePolicy(double period_s) : period_s_(period_s) {
  ensure(period_s_ > 0.0, "FixedRatePolicy: period must be positive");
}

double FixedRatePolicy::next_interval_s(const SchedulerState&) const {
  return period_s_;
}

SocProportionalPolicy::SocProportionalPolicy(double min_per_min, double max_per_min,
                                             double low_water_soc,
                                             double high_water_soc)
    : min_per_min_(min_per_min),
      max_per_min_(max_per_min),
      low_water_soc_(low_water_soc),
      high_water_soc_(high_water_soc) {
  ensure(min_per_min_ > 0.0 && max_per_min_ >= min_per_min_,
         "SocProportionalPolicy: bad rate bounds");
  ensure(low_water_soc_ >= 0.0 && high_water_soc_ > low_water_soc_ &&
             high_water_soc_ <= 1.0,
         "SocProportionalPolicy: bad SoC thresholds");
}

double SocProportionalPolicy::next_interval_s(const SchedulerState& state) const {
  // Arithmetic lives in detail::soc_proportional_interval_s (scheduler.hpp)
  // so the inline fast-dispatch path and this virtual path share one body.
  return detail::soc_proportional_interval_s(min_per_min_, max_per_min_,
                                             low_water_soc_, high_water_soc_,
                                             state.soc);
}

EnergyNeutralPolicy::EnergyNeutralPolicy(double margin, double min_per_min,
                                         double max_per_min, double target_soc)
    : margin_(margin),
      min_per_min_(min_per_min),
      max_per_min_(max_per_min),
      target_soc_(target_soc) {
  ensure(margin_ > 0.0 && margin_ <= 1.0, "EnergyNeutralPolicy: bad margin");
  ensure(min_per_min_ > 0.0 && max_per_min_ >= min_per_min_,
         "EnergyNeutralPolicy: bad rate bounds");
  ensure(target_soc_ > 0.0 && target_soc_ < 1.0, "EnergyNeutralPolicy: bad target SoC");
}

double EnergyNeutralPolicy::next_interval_s(const SchedulerState& state) const {
  // Arithmetic lives in detail::energy_neutral_interval_s (scheduler.hpp) so
  // the inline fast-dispatch path and this virtual path share one body.
  return detail::energy_neutral_interval_s(margin_, min_per_min_, max_per_min_,
                                           target_soc_, state);
}

}  // namespace iw::platform
