#include "platform/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace iw::platform {

FixedRatePolicy::FixedRatePolicy(double period_s) : period_s_(period_s) {
  ensure(period_s_ > 0.0, "FixedRatePolicy: period must be positive");
}

double FixedRatePolicy::next_interval_s(const SchedulerState&) const {
  return period_s_;
}

SocProportionalPolicy::SocProportionalPolicy(double min_per_min, double max_per_min,
                                             double low_water_soc,
                                             double high_water_soc)
    : min_per_min_(min_per_min),
      max_per_min_(max_per_min),
      low_water_soc_(low_water_soc),
      high_water_soc_(high_water_soc) {
  ensure(min_per_min_ > 0.0 && max_per_min_ >= min_per_min_,
         "SocProportionalPolicy: bad rate bounds");
  ensure(low_water_soc_ >= 0.0 && high_water_soc_ > low_water_soc_ &&
             high_water_soc_ <= 1.0,
         "SocProportionalPolicy: bad SoC thresholds");
}

double SocProportionalPolicy::next_interval_s(const SchedulerState& state) const {
  double rate_per_min;
  if (state.soc <= low_water_soc_) {
    // Survival mode: one tenth of the minimum rate.
    rate_per_min = 0.1 * min_per_min_;
  } else if (state.soc >= high_water_soc_) {
    rate_per_min = max_per_min_;
  } else {
    const double frac =
        (state.soc - low_water_soc_) / (high_water_soc_ - low_water_soc_);
    rate_per_min = min_per_min_ + frac * (max_per_min_ - min_per_min_);
  }
  return 60.0 / rate_per_min;
}

EnergyNeutralPolicy::EnergyNeutralPolicy(double margin, double min_per_min,
                                         double max_per_min, double target_soc)
    : margin_(margin),
      min_per_min_(min_per_min),
      max_per_min_(max_per_min),
      target_soc_(target_soc) {
  ensure(margin_ > 0.0 && margin_ <= 1.0, "EnergyNeutralPolicy: bad margin");
  ensure(min_per_min_ > 0.0 && max_per_min_ >= min_per_min_,
         "EnergyNeutralPolicy: bad rate bounds");
  ensure(target_soc_ > 0.0 && target_soc_ < 1.0, "EnergyNeutralPolicy: bad target SoC");
}

double EnergyNeutralPolicy::next_interval_s(const SchedulerState& state) const {
  ensure(state.detection_energy_j > 0.0,
         "EnergyNeutralPolicy: detection energy must be positive");
  // Sustainable rate from the smoothed intake.
  double rate_per_min =
      margin_ * state.recent_intake_w / state.detection_energy_j * 60.0;
  // SoC correction: up to +/-50% depending on distance from the target.
  const double soc_error = state.soc - target_soc_;
  rate_per_min *= std::clamp(1.0 + soc_error, 0.5, 1.5);
  rate_per_min = std::clamp(rate_per_min, min_per_min_, max_per_min_);
  return 60.0 / rate_per_min;
}

}  // namespace iw::platform
