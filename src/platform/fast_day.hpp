// Allocation-free fast-path device-day simulation.
//
// `simulate_day` runs one day of the firmware duty cycle on the
// discrete-event engine: ~2880 heap-scheduled std::function callbacks per
// device-day, a priority queue, and a TraceRecorder — fixed cost that
// dominates fleet-scale runs (wearer-years across thousands of devices)
// where nobody reads the trace and the event structure is fully known up
// front: one periodic harvest tick plus one (periodic or self-rescheduling)
// detection stream.
//
// The fast path replays exactly that structure with a two-stream merge loop:
// no engine, no heap, no std::function, and (with `DeviceConfig::record_trace`
// off, the default) no allocation at all. It calls the same `detail::DayState`
// kernel as the engine path — same tick phase, same event order including the
// engine's FIFO tie-breaking at coincident times, same accumulation order —
// so its `DaySimulationResult` is bit-identical to `simulate_day` /
// `simulate_day_with_policy`. The engine path stays as the oracle; the
// property suite in tests/platform/test_fast_day.cpp pins the equivalence.
#pragma once

#include "harvest/harvester.hpp"
#include "platform/device.hpp"

namespace iw::platform {

class DetectionPolicy;  // scheduler.hpp

/// Bit-identical drop-in for `simulate_day`, without the event engine.
DaySimulationResult simulate_day_fast(const DeviceConfig& config,
                                      const hv::DualSourceHarvester& harvester,
                                      const hv::DayProfile& profile);

/// Bit-identical drop-in for `simulate_day_with_policy`.
DaySimulationResult simulate_day_fast_with_policy(
    const DeviceConfig& config, const hv::DualSourceHarvester& harvester,
    const hv::DayProfile& profile, const DetectionPolicy& policy);

}  // namespace iw::platform
