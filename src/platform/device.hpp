// The InfiniWolf device model: harvesting, battery and firmware duty cycle,
// simulated over a day on the discrete-event engine.
//
// The firmware loop mirrors the paper's application scenario: the device
// sleeps, periodically wakes, acquires ECG + GSR for 3 s, extracts features,
// classifies on the chosen processor, optionally notifies over BLE, and goes
// back to sleep. Harvested power charges the 120 mAh LiPo continuously; a
// detection is skipped when the battery cannot cover it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "harvest/harvester.hpp"
#include "platform/detection_cost.hpp"
#include "power/battery.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace iw::platform {

struct DeviceConfig {
  DetectionCost detection;
  /// How often a detection is attempted.
  double detection_period_s = 60.0;
  double initial_soc = 0.5;
  pwr::LipoBattery::Params battery;
  /// Baseline sleep draw of the whole system. The paper's harvest intake
  /// measurements already subtract the sleeping system's quiescent current
  /// (the SMU measured net intake with InfiniWolf asleep), so the default
  /// keeps this at zero to avoid double counting; set it when modeling a
  /// different sleep configuration.
  double sleep_power_w = 0.0;
  /// Environment sampling step for charging integration.
  double harvest_tick_s = 60.0;
  /// Record the soc / intake_w / detection / interval_s time series into
  /// `DaySimulationResult::trace`. Off by default: the scalar outcome fields
  /// cover most consumers (the fleet never reads the trace), and filling the
  /// channels costs allocations on every day simulated. Timeline consumers
  /// (plots, CSV dumps, trace-shape tests) opt in.
  bool record_trace = false;
};

struct DaySimulationResult {
  std::uint64_t detections_attempted = 0;
  std::uint64_t detections_completed = 0;
  std::uint64_t detections_skipped = 0;  // battery too low
  double harvested_j = 0.0;
  double consumed_j = 0.0;
  double initial_soc = 0.0;
  double final_soc = 0.0;
  /// Lowest SoC seen during the day: the initial SoC and every harvest-tick
  /// sample (the same samples the "soc" trace channel records).
  double min_soc = 1.0;
  /// Empty unless `DeviceConfig::record_trace` is set.
  sim::TraceRecorder trace;  // channels: soc, intake_w, detection
};

/// Runs the firmware duty cycle over an environment profile.
DaySimulationResult simulate_day(const DeviceConfig& config,
                                 const hv::DualSourceHarvester& harvester,
                                 const hv::DayProfile& profile);

class DetectionPolicy;  // scheduler.hpp

/// Like simulate_day, but the detection interval is chosen dynamically by an
/// energy-aware policy after every attempt (the paper's "opportunistic"
/// acquisition). `config.detection_period_s` seeds the first interval.
DaySimulationResult simulate_day_with_policy(const DeviceConfig& config,
                                             const hv::DualSourceHarvester& harvester,
                                             const hv::DayProfile& profile,
                                             const DetectionPolicy& policy);

/// Environment at absolute time `t` within a profile (segments repeat when
/// the profile is shorter than t).
const hv::Environment& environment_at(const hv::DayProfile& profile, double t);

/// Copy of a profile with every segment's illuminance scaled by `factor`
/// (weather/behaviour variation between days).
hv::DayProfile scale_profile_lux(const hv::DayProfile& profile, double factor);

/// Same scaling, written into a caller-owned buffer whose capacity is reused
/// across days (the fleet fast path calls this once per device-day).
void scale_profile_lux_into(const hv::DayProfile& profile, double factor,
                            hv::DayProfile& out);

/// Long-horizon autonomy: runs `days` consecutive day simulations, carrying
/// the battery state over and scaling each day's light by a log-normal-ish
/// factor exp(N(0, lux_sigma)) to model weather variation. The paper's
/// "wear-and-forget" claim holds when the battery never empties.
struct MultiDayResult {
  std::vector<DaySimulationResult> days;
  double min_soc = 1.0;
  double final_soc = 0.0;
  std::uint64_t total_detections = 0;
  std::uint64_t total_skipped = 0;
};
MultiDayResult simulate_days(const DeviceConfig& config,
                             const hv::DualSourceHarvester& harvester,
                             const hv::DayProfile& base_profile, int days,
                             Rng& rng, double lux_sigma = 0.4);

}  // namespace iw::platform
