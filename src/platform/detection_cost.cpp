#include "platform/detection_cost.hpp"

#include "common/error.hpp"

namespace iw::platform {

DetectionCost make_detection_cost(const DetectionCostParams& params) {
  ensure(params.feature_extraction_s >= 0.0 && params.notification_bytes >= 0.0,
         "make_detection_cost: invalid parameters");
  DetectionCost cost;
  cost.acquisition_j = params.acquisition.energy_j();
  cost.feature_extraction_j =
      params.feature_extraction_s * params.feature_processor.active_power_w;
  const std::uint64_t classification_cycles = params.certificate.valid()
                                                  ? params.certificate.ceiling_cycles
                                                  : params.classification_cycles;
  cost.classification_j =
      params.classification_processor.energy_j(classification_cycles);
  if (params.notification_bytes > 0.0) {
    cost.notification_j = ble::BleLink().notification_energy_j(params.notification_bytes);
  }
  cost.duration_s = params.acquisition.duration_s + params.feature_extraction_s +
                    params.classification_processor.time_s(classification_cycles);
  return cost;
}

}  // namespace iw::platform
