// SIMD execution tier for the cohort day kernel (DESIGN.md §15).
//
// The register-resident lane kernel in device.cpp advances N independent
// device-days whose per-lane arithmetic is a pure FP chain — exactly the
// shape explicit SIMD wants. These entry points run a *prefix* of a clock
// group's register-eligible lanes through vectorized blocks (harvest ticks
// fully vectorized; detection drains vectorized for packs of lanes on the
// same fixed-period stream, scalar per lane otherwise) and return how many
// lanes they consumed. The caller (run_cohort_group) hands the remaining
// lanes to the scalar register ladder and the general sweep unchanged.
//
// Bit-exactness is by construction: lanes only ever share *instructions*,
// never operands, and every vector statement is the same IEEE operation in
// the same order as the scalar kernel (see cohort_simd_impl.hpp for the
// statement-by-statement argument). The per-tier translation units are
// compiled with -ffp-contract=off so no fused multiply-add can be
// introduced behind the wrapper's back.
#pragma once

#include <cstddef>

namespace iw::platform::detail {

struct CohortGroupRefs;

/// Dispatches to the widest active SIMD tier (simd::active_tier()); returns
/// the number of register-eligible lanes consumed (0 when the tier is off or
/// the build excludes SIMD kernels).
std::size_t run_cohort_group_simd(const CohortGroupRefs& refs);

/// Per-tier entry points, each defined in its own translation unit so the
/// AVX2 code can be compiled with -mavx2 without contaminating baseline TUs.
/// A tier TU compiled on a target lacking the ISA defines its symbol as a
/// stub returning 0; the dispatcher never selects it there.
std::size_t run_cohort_group_simd_array(const CohortGroupRefs& refs);
std::size_t run_cohort_group_simd_sse2(const CohortGroupRefs& refs);
std::size_t run_cohort_group_simd_avx2(const CohortGroupRefs& refs);

}  // namespace iw::platform::detail
