#include "platform/device.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/error.hpp"
#include "platform/cohort_simd.hpp"
#include "platform/day_kernel.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {

const hv::Environment& environment_at(const hv::DayProfile& profile, double t) {
  return profile[detail::segment_index_at(profile, t)].env;
}

namespace detail {

std::size_t segment_index_at(const hv::DayProfile& profile, double t) {
  ensure(!profile.empty(), "environment_at: empty profile");
  const double total = hv::profile_duration_s(profile);
  ensure(total > 0.0, "environment_at: zero-length profile");
  double local = std::fmod(t, total);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (local < profile[i].duration_s) return i;
    local -= profile[i].duration_s;
  }
  return profile.size() - 1;
}

DetectionGate compute_detection_gate(const pwr::LipoBattery::Params& battery,
                                     double need_j) {
  // stored_energy_j() midpoint-integrates the OCV curve, i.e. computes
  // soc * capacity_c * mean(ocv) — a function whose exact value is strictly
  // increasing in SoC with slope >= 3 V * capacity_c, while its
  // floating-point rounding error is bounded by ~10^2 ulps of the
  // full-battery energy, many orders of magnitude below what a 1e-6 SoC step
  // moves it by. So after bisecting the crossing of `need_j` to ~1e-8, every
  // SoC more than 1e-6 above it provably clears the gate and every SoC more
  // than 1e-6 below provably fails it; only the window in between needs the
  // exact evaluation, keeping the gate bit-equivalent to evaluating
  // stored_energy_j() at every attempt.
  const auto energy_at = [&](double soc) {
    return pwr::LipoBattery(battery, soc).stored_energy_j();
  };
  DetectionGate gate;
  if (energy_at(1.0) < need_j) {
    gate.lo_soc = gate.hi_soc = 2.0;  // soc < 2: never enough energy
  } else if (energy_at(0.0) >= need_j) {
    gate.lo_soc = gate.hi_soc = -1.0;  // soc > -1: always enough
  } else {
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 27; ++i) {
      const double mid = 0.5 * (lo + hi);
      (energy_at(mid) >= need_j ? hi : lo) = mid;
    }
    gate.lo_soc = lo - 1e-6;
    gate.hi_soc = hi + 1e-6;
  }
  return gate;
}

const DetectionGate& DetectionGateCache::get(const pwr::LipoBattery::Params& battery,
                                             double need_j) {
  for (const Entry& e : entries_) {
    if (e.capacity_mah == battery.capacity_mah &&
        e.charge_efficiency == battery.charge_efficiency && e.need_j == need_j) {
      return e.gate;
    }
  }
  entries_.push_back(Entry{battery.capacity_mah, battery.charge_efficiency, need_j,
                           compute_detection_gate(battery, need_j)});
  return entries_.back().gate;
}

DayState::DayState(const DeviceConfig& config_in,
                   const hv::DualSourceHarvester& harvester_in,
                   const hv::DayProfile& profile_in, DaySimulationResult& result_in) {
  init(config_in, harvester_in, profile_in, result_in);
}

void DayState::init(const DeviceConfig& config_in,
                    const hv::DualSourceHarvester& harvester_in,
                    const hv::DayProfile& profile_in, DaySimulationResult& result_in,
                    DetectionGateCache* gate_cache) {
  config = &config_in;
  harvester = &harvester_in;
  profile = &profile_in;
  result = &result_in;
  battery = pwr::LipoBattery(config_in.battery, config_in.initial_soc);
  ensure(config->detection_period_s > 0.0, "simulate_day: bad detection period");
  ensure(config->harvest_tick_s > 0.0, "simulate_day: bad harvest tick");
  horizon = hv::profile_duration_s(*profile);
  result->initial_soc = config->initial_soc;
  result->min_soc = config->initial_soc;
  cached_env = &environment_at(*profile, 0.0);
  cached_intake_w = harvester->intake_w(*cached_env);
  smoothed_intake_w = cached_intake_w;

  // Detection-gate window: derived when the day schedules enough attempts to
  // amortize the bisection's ~30 probe integrations, sentinels (exact
  // evaluation per attempt) otherwise. With a cache the derivation itself is
  // amortized across every day on the same battery spec and detection cost.
  detection_need_j = config->detection.total_j();
  detection_power_w = detection_need_j / config->detection.duration_s;
  detection_complete_j = 0.95 * detection_need_j;
  gate = DetectionGate{};
  if (horizon / config->detection_period_s >= 64.0) {
    gate = gate_cache != nullptr
               ? gate_cache->get(config->battery, detection_need_j)
               : compute_detection_gate(config->battery, detection_need_j);
  }
}

void DayState::harvest_tick(double t) {
  // Sample conditions at the middle of the elapsed tick. Segments are
  // constant, so the harvester chain is only re-run when the returned
  // reference moves to a different segment of the profile.
  harvest_tick_env(t, environment_at(*profile, t - config->harvest_tick_s / 2.0));
}

void DayState::harvest_tick_env(double t, const hv::Environment& env) {
  if (&env != cached_env) {
    cached_env = &env;
    cached_intake_w = harvester->intake_w(env);
  }
  const double intake_w = cached_intake_w;
  smoothed_intake_w = 0.9 * smoothed_intake_w + 0.1 * intake_w;
  // charge() with zero power stores zero coulombs and returns +0.0, and
  // harvested_j only ever accumulates non-negative values, so skipping the
  // call on zero intake (night segments: a third of most days' ticks) leaves
  // both the SoC and harvested_j bit-identical. A (invalid) negative intake
  // still reaches charge() and throws exactly as before.
  if (intake_w != 0.0) {
    result->harvested_j += battery.charge(intake_w, config->harvest_tick_s);
  }
  if (config->sleep_power_w > 0.0) {
    result->consumed_j +=
        battery.discharge(config->sleep_power_w, config->harvest_tick_s);
  }
  result->min_soc = std::min(result->min_soc, battery.soc());
  if (config->record_trace) {
    result->trace.record("intake_w", t, intake_w);
    result->trace.record("soc", t, battery.soc());
  }
}

bool DayState::attempt_detection(double t) {
  ++result->detections_attempted;
  const double need_j = detection_need_j;
  const double soc = battery.soc();
  const bool has_energy = soc > gate.hi_soc   ? true
                          : soc < gate.lo_soc ? false
                                              : battery.stored_energy_j() >= need_j;
  if (has_energy && !battery.empty()) {
    const double got =
        battery.discharge(detection_power_w, config->detection.duration_s);
    result->consumed_j += got;
    if (got >= detection_complete_j) {
      ++result->detections_completed;
      if (config->record_trace) result->trace.record("detection", t, 1.0);
      return true;
    }
  }
  ++result->detections_skipped;
  if (config->record_trace) result->trace.record("detection", t, 0.0);
  return false;
}

double DayState::policy_interval(const DetectionPolicy& policy, double t) {
  SchedulerState state;
  state.soc = battery.soc();
  state.recent_intake_w = smoothed_intake_w;
  state.detection_energy_j = detection_need_j;
  const double interval = policy.next_interval_s(state);
  ensure(interval > 0.0, "detection policy returned non-positive interval");
  if (config->record_trace) result->trace.record("interval_s", t, interval);
  return interval;
}

double DayState::policy_interval_fast(const PolicyEval& eval,
                                      const DetectionPolicy& policy, double t) {
  SchedulerState state;
  state.soc = battery.soc();
  state.recent_intake_w = smoothed_intake_w;
  state.detection_energy_j = detection_need_j;
  const double interval = policy_interval_s(eval, policy, state);
  ensure(interval > 0.0, "detection policy returned non-positive interval");
  if (config->record_trace) result->trace.record("interval_s", t, interval);
  return interval;
}

void DayState::finish() { result->final_soc = battery.soc(); }

namespace {

/// Fires every detection of `lane` the engine would pop before a pending
/// harvest event at (t, harvest_seq); with `harvest_pending` false (after the
/// last tick) the stream just runs out to the horizon. Exactly the detection
/// arm of fast_day.cpp's merge loop.
inline void drain_detections(const CohortGroupRefs& refs, std::size_t lane,
                             bool harvest_pending, double t) {
  DayState& day = refs.lanes[lane];
  const double horizon = day.horizon;
  // Two-tier structure: the common case — nothing due before this tick —
  // reads the lane's scheduling state and leaves without writing anything;
  // only when at least one detection fires does the burst loop run, with the
  // state held in registers until one writeback at the end (the hooks never
  // touch these arrays).
  if (refs.detect_alive[lane] == 0) return;
  double detect_t = refs.detect_t[lane];
  std::uint64_t detect_seq = refs.detect_seq[lane];
  const std::uint64_t harvest_seq = refs.harvest_seq[lane];
  if (!(detect_t <= horizon) ||
      (harvest_pending && !(detect_t < t || (detect_t == t &&
                                             detect_seq < harvest_seq)))) {
    return;
  }
  std::uint64_t next_seq = refs.next_seq[lane];
  std::uint8_t alive = 1;
  do {
    day.attempt_detection(detect_t);
    if (refs.policies[lane] != nullptr) {
      const double interval = day.policy_interval_fast(
          refs.policy_evals[lane], *refs.policies[lane], detect_t);
      if (detect_t + interval > horizon) alive = 0;
      detect_seq = next_seq++;
      detect_t += interval;
    } else {
      detect_seq = next_seq++;
      detect_t += day.config->detection_period_s;
    }
  } while (alive != 0 && detect_t <= horizon &&
           (!harvest_pending || detect_t < t ||
            (detect_t == t && detect_seq < harvest_seq)));
  refs.detect_t[lane] = detect_t;
  refs.detect_seq[lane] = detect_seq;
  refs.next_seq[lane] = next_seq;
  refs.detect_alive[lane] = alive;
}

/// Register-resident whole-day loop for N lanes (the cohort kernel's hot
/// path). All per-lane mutable state — SoC, the OCV at that SoC, the intake
/// smoother, the result accumulators and the detection-stream clock — lives
/// in locals for the entire day, so the serial dependence of each lane is a
/// pure FP chain with no store-to-load round-trips, and the N lanes' chains
/// (divides and OCV interpolations on SoC) overlap in the out-of-order core.
///
/// Bit-exactness: every arithmetic statement below is the same expression,
/// in the same order, as the inline LipoBattery ops / DayState hooks it
/// replaces — the hoisted per-lane constants are the exact values those ops
/// recompute, and `v[i]` maintains the invariant v == lipo_ocv_at(soc)
/// that the battery's voltage memo maintains. The two branches the scalar
/// path takes that are *not* replicated are charge()'s zero-intake and
/// pinned-full skips: both are proven no-op identities (see harvest loop
/// comment), so running the arithmetic unconditionally produces the same
/// bits. Lanes only qualify for this path when tracing is off and every
/// possible charge/discharge input is non-negative (see cohort_day.cpp), so
/// no ensure() the scalar ops would pass can fire differently here.
template <int N>
void run_cohort_reg_lanes(const CohortGroupRefs& refs, const std::size_t* ids) {
  DayState* day[N];
  const std::uint32_t* segs[N];
  const double* intake[N];
  const DetectionPolicy* pol[N];
  PolicyEval pev[N];
  // Hoisted constants — each the exact expression the per-op scalar code
  // evaluates from the same operands.
  double cap_c[N], eff[N], tick_s[N], sleep_w[N], det_pw[N], det_dur[N];
  double need[N], complete[N], gate_lo[N], gate_hi[N], period[N];
  bool has_sleep[N];
  // Register-resident day state.
  double soc[N], v[N], sm[N], min_soc[N], harvested[N], consumed[N];
  double detect_t[N];
  std::uint64_t attempted[N], completed[N], skipped[N];
  std::uint64_t dseq[N], hseq[N], nseq[N];
  std::uint8_t alive[N];

  for (int i = 0; i < N; ++i) {
    const std::size_t lane = ids[i];
    day[i] = &refs.lanes[lane];
    segs[i] = refs.seg_tables[lane];
    intake[i] = refs.intake_tables[lane];
    pol[i] = refs.policies[lane];
    pev[i] = refs.policy_evals[lane];
    const DeviceConfig& cfg = *day[i]->config;
    cap_c[i] = units::mah_to_coulombs(cfg.battery.capacity_mah);
    eff[i] = cfg.battery.charge_efficiency;
    tick_s[i] = cfg.harvest_tick_s;
    sleep_w[i] = cfg.sleep_power_w;
    has_sleep[i] = cfg.sleep_power_w > 0.0;
    det_pw[i] = day[i]->detection_power_w;
    det_dur[i] = cfg.detection.duration_s;
    need[i] = day[i]->detection_need_j;
    complete[i] = day[i]->detection_complete_j;
    gate_lo[i] = day[i]->gate.lo_soc;
    gate_hi[i] = day[i]->gate.hi_soc;
    period[i] = cfg.detection_period_s;
    soc[i] = day[i]->battery.soc();
    // The battery memo's first use would evaluate the OCV at exactly this
    // SoC; evaluating it eagerly is the same pure function on the same input.
    v[i] = pwr::detail::lipo_ocv_at(soc[i]);
    sm[i] = day[i]->smoothed_intake_w;
    const DaySimulationResult& r = *day[i]->result;
    min_soc[i] = r.min_soc;
    harvested[i] = r.harvested_j;
    consumed[i] = r.consumed_j;
    attempted[i] = r.detections_attempted;
    completed[i] = r.detections_completed;
    skipped[i] = r.detections_skipped;
    detect_t[i] = refs.detect_t[lane];
    dseq[i] = refs.detect_seq[lane];
    hseq[i] = refs.harvest_seq[lane];
    nseq[i] = refs.next_seq[lane];
    alive[i] = refs.detect_alive[lane];
  }
  const double horizon = day[0]->horizon;  // group-shared by construction

  // The detection arm of the merge loop on the register state — exactly
  // drain_detections / DayState::attempt_detection with tracing known off.
  const auto drain = [&](int i, bool pending, double t) {
    if (alive[i] == 0) return;
    if (!(detect_t[i] <= horizon) ||
        (pending &&
         !(detect_t[i] < t || (detect_t[i] == t && dseq[i] < hseq[i])))) {
      return;
    }
    do {
      ++attempted[i];
      const double s = soc[i];
      bool has_energy;
      if (s > gate_hi[i]) {
        has_energy = true;
      } else if (s < gate_lo[i]) {
        has_energy = false;
      } else {
        // Rare exact-gate window: push the register SoC into the lane's
        // battery so stored_energy_j() stays the single shared definition.
        day[i]->battery.restore_soc(s);
        has_energy = day[i]->battery.stored_energy_j() >= need[i];
      }
      bool fired = false;
      if (has_energy && !(s <= 0.0)) {
        // battery.discharge(det_pw, det_dur) on registers.
        const double current_a = det_pw[i] / v[i];
        const double want_c = current_a * det_dur[i];
        const double have_c = s * cap_c[i];
        const double delta_c = std::min(want_c, have_c);
        soc[i] = s - delta_c / cap_c[i];
        v[i] = pwr::detail::lipo_ocv_at(soc[i]);
        const double got = delta_c * v[i];
        consumed[i] += got;
        if (got >= complete[i]) {
          ++completed[i];
          fired = true;
        }
      }
      if (!fired) ++skipped[i];
      if (pol[i] != nullptr) {
        SchedulerState state;
        state.soc = soc[i];
        state.recent_intake_w = sm[i];
        state.detection_energy_j = need[i];
        const double interval = policy_interval_s(pev[i], *pol[i], state);
        ensure(interval > 0.0, "detection policy returned non-positive interval");
        if (detect_t[i] + interval > horizon) alive[i] = 0;
        dseq[i] = nseq[i]++;
        detect_t[i] += interval;
      } else {
        dseq[i] = nseq[i]++;
        detect_t[i] += period[i];
      }
    } while (alive[i] != 0 && detect_t[i] <= horizon &&
             (!pending ||
              detect_t[i] < t || (detect_t[i] == t && dseq[i] < hseq[i])));
  };

  for (std::size_t k = 0; k < refs.num_ticks; ++k) {
    const double t = refs.times[k];
    for (int i = 0; i < N; ++i) drain(i, /*pending=*/true, t);
    for (int i = 0; i < N; ++i) {
      // harvest_tick_env on registers; the intake comes from the shared
      // per-segment table (the same pure evaluation as the scalar cache).
      const double intake_w = intake[i][segs[i][k]];
      sm[i] = 0.9 * sm[i] + 0.1 * intake_w;
      // battery.charge(intake_w, tick) on registers, keeping the scalar
      // path's two skips: zero intake (night segments — runs of hundreds of
      // ticks, so the branch predicts) and the pinned-full fast path (bright
      // days hold SoC at exactly 1.0 for hours). Both are also no-op
      // identities of the arithmetic below, so this is purely a perf branch.
      if (intake_w != 0.0 && soc[i] < 1.0) {
        const double current_a = intake_w / v[i];
        const double delta_c = current_a * tick_s[i] * eff[i];
        const double s0 = soc[i];
        const double new_soc = std::min(1.0, s0 + delta_c / cap_c[i]);
        const double stored_c = (new_soc - s0) * cap_c[i];
        soc[i] = new_soc;
        v[i] = pwr::detail::lipo_ocv_at(new_soc);
        harvested[i] += stored_c * v[i];
      }
      if (has_sleep[i]) {  // per-lane constant: predicted perfectly
        // battery.discharge(sleep_w, tick) on registers.
        const double cur = sleep_w[i] / v[i];
        const double want_c = cur * tick_s[i];
        const double have_c = soc[i] * cap_c[i];
        const double delta = std::min(want_c, have_c);
        soc[i] -= delta / cap_c[i];
        v[i] = pwr::detail::lipo_ocv_at(soc[i]);
        consumed[i] += delta * v[i];
      }
      min_soc[i] = std::min(min_soc[i], soc[i]);
      hseq[i] = nseq[i]++;
    }
  }
  for (int i = 0; i < N; ++i) drain(i, /*pending=*/false, 0.0);

  for (int i = 0; i < N; ++i) {
    const std::size_t lane = ids[i];
    refs.detect_t[lane] = detect_t[i];
    refs.detect_seq[lane] = dseq[i];
    refs.harvest_seq[lane] = hseq[i];
    refs.next_seq[lane] = nseq[i];
    refs.detect_alive[lane] = alive[i];
    day[i]->smoothed_intake_w = sm[i];
    day[i]->battery.restore_soc(soc[i]);
    DaySimulationResult& r = *day[i]->result;
    r.harvested_j = harvested[i];
    r.consumed_j = consumed[i];
    r.min_soc = min_soc[i];
    r.detections_attempted = attempted[i];
    r.detections_completed = completed[i];
    r.detections_skipped = skipped[i];
    day[i]->finish();
  }
}

}  // namespace

void run_cohort_group(const CohortGroupRefs& refs) {
  // SIMD tier first: consumes a prefix of the register-eligible lanes in
  // vector blocks when a tier is active (see cohort_simd.hpp), bit-identical
  // to the scalar ladder below by construction. Returns 0 when SIMD is off,
  // excluded from the build, or unsupported by the host.
  std::size_t j = run_cohort_group_simd(refs);
  // Scalar register ladder for the remaining register-eligible lanes.
  for (; j + 16 <= refs.num_reg_lanes; j += 16) {
    run_cohort_reg_lanes<16>(refs, refs.lane_ids + j);
  }
  for (; j + 8 <= refs.num_reg_lanes; j += 8) {
    run_cohort_reg_lanes<8>(refs, refs.lane_ids + j);
  }
  for (; j + 4 <= refs.num_reg_lanes; j += 4) {
    run_cohort_reg_lanes<4>(refs, refs.lane_ids + j);
  }
  for (; j + 2 <= refs.num_reg_lanes; j += 2) {
    run_cohort_reg_lanes<2>(refs, refs.lane_ids + j);
  }
  for (; j < refs.num_reg_lanes; ++j) {
    run_cohort_reg_lanes<1>(refs, refs.lane_ids + j);
  }
  if (refs.num_reg_lanes == refs.num_lanes) return;

  // General sweep for the rest (tracing lanes, invalid-sign inputs): the
  // lockstep two-pass loop over the in-memory DayState hooks. Two passes per
  // tick, not one fused loop: the drain pass is branchy (data-dependent loop
  // trips, policy dispatch) while the tick pass is near-straight-line
  // arithmetic, and separating them lets the out-of-order core overlap
  // independent lanes' divide chains. Per lane the event order is untouched —
  // all of a lane's due detections still fire before its tick at `t`.
  const std::size_t n0 = refs.num_reg_lanes;
  for (std::size_t k = 0; k < refs.num_ticks; ++k) {
    const double t = refs.times[k];
    for (std::size_t jj = n0; jj < refs.num_lanes; ++jj) {
      drain_detections(refs, refs.lane_ids[jj], /*harvest_pending=*/true, t);
    }
    for (std::size_t jj = n0; jj < refs.num_lanes; ++jj) {
      const std::size_t lane = refs.lane_ids[jj];
      DayState& day = refs.lanes[lane];
      day.harvest_tick_env(t, (*day.profile)[refs.seg_tables[lane][k]].env);
      refs.harvest_seq[lane] = refs.next_seq[lane]++;
    }
  }
  for (std::size_t jj = n0; jj < refs.num_lanes; ++jj) {
    const std::size_t lane = refs.lane_ids[jj];
    drain_detections(refs, lane, /*harvest_pending=*/false, 0.0);
    refs.lanes[lane].finish();
  }
}

}  // namespace detail

namespace {

DaySimulationResult run_simulation(const DeviceConfig& config,
                                   const hv::DualSourceHarvester& harvester,
                                   const hv::DayProfile& profile,
                                   const DetectionPolicy* policy) {
  DaySimulationResult result;
  detail::DayState day(config, harvester, profile, result);
  const double horizon = day.horizon;
  sim::Engine engine;

  // Continuous charging + sleep drain, integrated at the harvest tick.
  engine.schedule_every(config.harvest_tick_s, [&] {
    const double t = engine.now();
    if (t > horizon) return false;
    day.harvest_tick(t);
    return t < horizon;
  });

  std::shared_ptr<std::function<void()>> tick;
  // Breaks the policy tick's self-capture cycle on every exit path,
  // including a policy throwing mid-run.
  struct TickCycleBreaker {
    std::shared_ptr<std::function<void()>>& tick;
    ~TickCycleBreaker() {
      if (tick) *tick = nullptr;
    }
  } tick_cycle_breaker{tick};
  if (policy == nullptr) {
    engine.schedule_every(config.detection_period_s, [&] {
      if (engine.now() > horizon) return false;
      day.attempt_detection(engine.now());
      return engine.now() < horizon;
    });
  } else {
    // Self-rescheduling task: the policy picks every next interval. The
    // closure captures its own handle (so the copies queued into the engine
    // keep it alive), which is an ownership cycle — TickCycleBreaker above
    // severs it on exit, or the function object would leak.
    tick = std::make_shared<std::function<void()>>();
    *tick = [&, tick] {
      if (engine.now() > horizon) return;
      day.attempt_detection(engine.now());
      const double interval = day.policy_interval(*policy, engine.now());
      if (engine.now() + interval <= horizon) engine.schedule_in(interval, *tick);
    };
    engine.schedule_in(config.detection_period_s, *tick);
  }

  engine.run_until(horizon + 1.0);
  day.finish();
  return result;
}

}  // namespace

DaySimulationResult simulate_day(const DeviceConfig& config,
                                 const hv::DualSourceHarvester& harvester,
                                 const hv::DayProfile& profile) {
  return run_simulation(config, harvester, profile, nullptr);
}

DaySimulationResult simulate_day_with_policy(const DeviceConfig& config,
                                             const hv::DualSourceHarvester& harvester,
                                             const hv::DayProfile& profile,
                                             const DetectionPolicy& policy) {
  return run_simulation(config, harvester, profile, &policy);
}

void scale_profile_lux_into(const hv::DayProfile& profile, double factor,
                            hv::DayProfile& out) {
  ensure(factor >= 0.0, "scale_profile_lux: negative factor");
  out.assign(profile.begin(), profile.end());
  for (hv::EnvironmentSegment& seg : out) seg.env.lux *= factor;
}

hv::DayProfile scale_profile_lux(const hv::DayProfile& profile, double factor) {
  hv::DayProfile scaled;
  scale_profile_lux_into(profile, factor, scaled);
  return scaled;
}

MultiDayResult simulate_days(const DeviceConfig& config,
                             const hv::DualSourceHarvester& harvester,
                             const hv::DayProfile& base_profile, int days,
                             Rng& rng, double lux_sigma) {
  ensure(days >= 1, "simulate_days: need at least one day");
  ensure(lux_sigma >= 0.0, "simulate_days: negative lux sigma");
  MultiDayResult result;
  DeviceConfig day_config = config;
  hv::DayProfile profile;
  for (int day = 0; day < days; ++day) {
    const double factor = std::exp(rng.normal(0.0, lux_sigma));
    scale_profile_lux_into(base_profile, factor, profile);
    DaySimulationResult r = simulate_day(day_config, harvester, profile);
    result.min_soc = std::min({result.min_soc, r.final_soc, r.min_soc});
    result.final_soc = r.final_soc;
    result.total_detections += r.detections_completed;
    result.total_skipped += r.detections_skipped;
    day_config.initial_soc = r.final_soc;  // carry the battery over
    result.days.push_back(std::move(r));
  }
  return result;
}

}  // namespace iw::platform
