#include "platform/device.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/error.hpp"
#include "platform/day_kernel.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {

const hv::Environment& environment_at(const hv::DayProfile& profile, double t) {
  ensure(!profile.empty(), "environment_at: empty profile");
  const double total = hv::profile_duration_s(profile);
  ensure(total > 0.0, "environment_at: zero-length profile");
  double local = std::fmod(t, total);
  for (const hv::EnvironmentSegment& seg : profile) {
    if (local < seg.duration_s) return seg.env;
    local -= seg.duration_s;
  }
  return profile.back().env;
}

namespace detail {

DayState::DayState(const DeviceConfig& config_in,
                   const hv::DualSourceHarvester& harvester_in,
                   const hv::DayProfile& profile_in, DaySimulationResult& result_in)
    : config(config_in),
      harvester(harvester_in),
      profile(profile_in),
      battery(config_in.battery, config_in.initial_soc),
      result(result_in) {
  ensure(config.detection_period_s > 0.0, "simulate_day: bad detection period");
  ensure(config.harvest_tick_s > 0.0, "simulate_day: bad harvest tick");
  horizon = hv::profile_duration_s(profile);
  result.initial_soc = config.initial_soc;
  result.min_soc = config.initial_soc;
  cached_env = &environment_at(profile, 0.0);
  cached_intake_w = harvester.intake_w(*cached_env);
  smoothed_intake_w = cached_intake_w;

  // Detection-gate window. stored_energy_j() midpoint-integrates the OCV
  // curve, i.e. computes soc * capacity_c * mean(ocv) — a function whose
  // exact value is strictly increasing in SoC with slope >= 3 V * capacity_c,
  // while its floating-point rounding error is bounded by ~10^2 ulps of the
  // full-battery energy, many orders of magnitude below what a 1e-6 SoC step
  // moves it by. So after bisecting the crossing of `need_j` to ~1e-8, every
  // SoC more than 1e-6 above it provably clears the gate and every SoC more
  // than 1e-6 below provably fails it; only the window in between needs the
  // exact evaluation, keeping the gate bit-equivalent to evaluating
  // stored_energy_j() at every attempt. Skipped (sentinels keep the exact
  // evaluation) when the day schedules too few attempts to amortize the
  // bisection's ~30 probe integrations.
  detection_need_j = config.detection.total_j();
  if (horizon / config.detection_period_s >= 64.0) {
    const auto energy_at = [&](double soc) {
      return pwr::LipoBattery(config.battery, soc).stored_energy_j();
    };
    if (energy_at(1.0) < detection_need_j) {
      gate_lo_soc = gate_hi_soc = 2.0;  // soc < 2: never enough energy
    } else if (energy_at(0.0) >= detection_need_j) {
      gate_lo_soc = gate_hi_soc = -1.0;  // soc > -1: always enough
    } else {
      double lo = 0.0, hi = 1.0;
      for (int i = 0; i < 27; ++i) {
        const double mid = 0.5 * (lo + hi);
        (energy_at(mid) >= detection_need_j ? hi : lo) = mid;
      }
      gate_lo_soc = lo - 1e-6;
      gate_hi_soc = hi + 1e-6;
    }
  }
}

void DayState::harvest_tick(double t) {
  // Sample conditions at the middle of the elapsed tick. Segments are
  // constant, so the harvester chain is only re-run when the returned
  // reference moves to a different segment of the profile.
  const hv::Environment& env =
      environment_at(profile, t - config.harvest_tick_s / 2.0);
  if (&env != cached_env) {
    cached_env = &env;
    cached_intake_w = harvester.intake_w(env);
  }
  const double intake_w = cached_intake_w;
  smoothed_intake_w = 0.9 * smoothed_intake_w + 0.1 * intake_w;
  result.harvested_j += battery.charge(intake_w, config.harvest_tick_s);
  if (config.sleep_power_w > 0.0) {
    result.consumed_j += battery.discharge(config.sleep_power_w, config.harvest_tick_s);
  }
  result.min_soc = std::min(result.min_soc, battery.soc());
  if (config.record_trace) {
    result.trace.record("intake_w", t, intake_w);
    result.trace.record("soc", t, battery.soc());
  }
}

bool DayState::attempt_detection(double t) {
  ++result.detections_attempted;
  const double need_j = detection_need_j;
  const double soc = battery.soc();
  const bool has_energy = soc > gate_hi_soc   ? true
                          : soc < gate_lo_soc ? false
                                              : battery.stored_energy_j() >= need_j;
  if (has_energy && !battery.empty()) {
    const double power = need_j / config.detection.duration_s;
    const double got = battery.discharge(power, config.detection.duration_s);
    result.consumed_j += got;
    if (got >= 0.95 * need_j) {
      ++result.detections_completed;
      if (config.record_trace) result.trace.record("detection", t, 1.0);
      return true;
    }
  }
  ++result.detections_skipped;
  if (config.record_trace) result.trace.record("detection", t, 0.0);
  return false;
}

double DayState::policy_interval(const DetectionPolicy& policy, double t) {
  SchedulerState state;
  state.soc = battery.soc();
  state.recent_intake_w = smoothed_intake_w;
  state.detection_energy_j = detection_need_j;
  const double interval = policy.next_interval_s(state);
  ensure(interval > 0.0, "detection policy returned non-positive interval");
  if (config.record_trace) result.trace.record("interval_s", t, interval);
  return interval;
}

void DayState::finish() { result.final_soc = battery.soc(); }

}  // namespace detail

namespace {

DaySimulationResult run_simulation(const DeviceConfig& config,
                                   const hv::DualSourceHarvester& harvester,
                                   const hv::DayProfile& profile,
                                   const DetectionPolicy* policy) {
  DaySimulationResult result;
  detail::DayState day(config, harvester, profile, result);
  const double horizon = day.horizon;
  sim::Engine engine;

  // Continuous charging + sleep drain, integrated at the harvest tick.
  engine.schedule_every(config.harvest_tick_s, [&] {
    const double t = engine.now();
    if (t > horizon) return false;
    day.harvest_tick(t);
    return t < horizon;
  });

  std::shared_ptr<std::function<void()>> tick;
  // Breaks the policy tick's self-capture cycle on every exit path,
  // including a policy throwing mid-run.
  struct TickCycleBreaker {
    std::shared_ptr<std::function<void()>>& tick;
    ~TickCycleBreaker() {
      if (tick) *tick = nullptr;
    }
  } tick_cycle_breaker{tick};
  if (policy == nullptr) {
    engine.schedule_every(config.detection_period_s, [&] {
      if (engine.now() > horizon) return false;
      day.attempt_detection(engine.now());
      return engine.now() < horizon;
    });
  } else {
    // Self-rescheduling task: the policy picks every next interval. The
    // closure captures its own handle (so the copies queued into the engine
    // keep it alive), which is an ownership cycle — TickCycleBreaker above
    // severs it on exit, or the function object would leak.
    tick = std::make_shared<std::function<void()>>();
    *tick = [&, tick] {
      if (engine.now() > horizon) return;
      day.attempt_detection(engine.now());
      const double interval = day.policy_interval(*policy, engine.now());
      if (engine.now() + interval <= horizon) engine.schedule_in(interval, *tick);
    };
    engine.schedule_in(config.detection_period_s, *tick);
  }

  engine.run_until(horizon + 1.0);
  day.finish();
  return result;
}

}  // namespace

DaySimulationResult simulate_day(const DeviceConfig& config,
                                 const hv::DualSourceHarvester& harvester,
                                 const hv::DayProfile& profile) {
  return run_simulation(config, harvester, profile, nullptr);
}

DaySimulationResult simulate_day_with_policy(const DeviceConfig& config,
                                             const hv::DualSourceHarvester& harvester,
                                             const hv::DayProfile& profile,
                                             const DetectionPolicy& policy) {
  return run_simulation(config, harvester, profile, &policy);
}

void scale_profile_lux_into(const hv::DayProfile& profile, double factor,
                            hv::DayProfile& out) {
  ensure(factor >= 0.0, "scale_profile_lux: negative factor");
  out.assign(profile.begin(), profile.end());
  for (hv::EnvironmentSegment& seg : out) seg.env.lux *= factor;
}

hv::DayProfile scale_profile_lux(const hv::DayProfile& profile, double factor) {
  hv::DayProfile scaled;
  scale_profile_lux_into(profile, factor, scaled);
  return scaled;
}

MultiDayResult simulate_days(const DeviceConfig& config,
                             const hv::DualSourceHarvester& harvester,
                             const hv::DayProfile& base_profile, int days,
                             Rng& rng, double lux_sigma) {
  ensure(days >= 1, "simulate_days: need at least one day");
  ensure(lux_sigma >= 0.0, "simulate_days: negative lux sigma");
  MultiDayResult result;
  DeviceConfig day_config = config;
  hv::DayProfile profile;
  for (int day = 0; day < days; ++day) {
    const double factor = std::exp(rng.normal(0.0, lux_sigma));
    scale_profile_lux_into(base_profile, factor, profile);
    DaySimulationResult r = simulate_day(day_config, harvester, profile);
    result.min_soc = std::min({result.min_soc, r.final_soc, r.min_soc});
    result.final_soc = r.final_soc;
    result.total_detections += r.detections_completed;
    result.total_skipped += r.detections_skipped;
    day_config.initial_soc = r.final_soc;  // carry the battery over
    result.days.push_back(std::move(r));
  }
  return result;
}

}  // namespace iw::platform
