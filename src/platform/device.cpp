#include "platform/device.hpp"

#include <cmath>
#include <functional>
#include <memory>

#include "common/error.hpp"
#include "platform/scheduler.hpp"

namespace iw::platform {

const hv::Environment& environment_at(const hv::DayProfile& profile, double t) {
  ensure(!profile.empty(), "environment_at: empty profile");
  const double total = hv::profile_duration_s(profile);
  ensure(total > 0.0, "environment_at: zero-length profile");
  double local = std::fmod(t, total);
  for (const hv::EnvironmentSegment& seg : profile) {
    if (local < seg.duration_s) return seg.env;
    local -= seg.duration_s;
  }
  return profile.back().env;
}

namespace {

DaySimulationResult run_simulation(const DeviceConfig& config,
                                   const hv::DualSourceHarvester& harvester,
                                   const hv::DayProfile& profile,
                                   const DetectionPolicy* policy) {
  ensure(config.detection_period_s > 0.0, "simulate_day: bad detection period");
  ensure(config.harvest_tick_s > 0.0, "simulate_day: bad harvest tick");

  const double horizon = hv::profile_duration_s(profile);
  sim::Engine engine;
  pwr::LipoBattery battery(config.battery, config.initial_soc);

  DaySimulationResult result;
  result.initial_soc = config.initial_soc;
  double smoothed_intake_w = harvester.intake_w(environment_at(profile, 0.0));

  // Continuous charging + sleep drain, integrated at the harvest tick.
  engine.schedule_every(config.harvest_tick_s, [&] {
    const double t = engine.now();
    if (t > horizon) return false;
    // Sample conditions at the middle of the elapsed tick.
    const hv::Environment& env =
        environment_at(profile, t - config.harvest_tick_s / 2.0);
    const double intake_w = harvester.intake_w(env);
    smoothed_intake_w = 0.9 * smoothed_intake_w + 0.1 * intake_w;
    result.harvested_j += battery.charge(intake_w, config.harvest_tick_s);
    if (config.sleep_power_w > 0.0) {
      result.consumed_j += battery.discharge(config.sleep_power_w, config.harvest_tick_s);
    }
    result.trace.record("intake_w", t, intake_w);
    result.trace.record("soc", t, battery.soc());
    return t < horizon;
  });

  // One detection attempt; returns true when it completed.
  const auto attempt_detection = [&] {
    const double t = engine.now();
    ++result.detections_attempted;
    const double need_j = config.detection.total_j();
    if (battery.stored_energy_j() >= need_j && !battery.empty()) {
      const double power = need_j / config.detection.duration_s;
      const double got = battery.discharge(power, config.detection.duration_s);
      result.consumed_j += got;
      if (got >= 0.95 * need_j) {
        ++result.detections_completed;
        result.trace.record("detection", t, 1.0);
        return true;
      }
    }
    ++result.detections_skipped;
    result.trace.record("detection", t, 0.0);
    return false;
  };

  std::shared_ptr<std::function<void()>> tick;
  // Breaks the policy tick's self-capture cycle on every exit path,
  // including a policy throwing mid-run.
  struct TickCycleBreaker {
    std::shared_ptr<std::function<void()>>& tick;
    ~TickCycleBreaker() {
      if (tick) *tick = nullptr;
    }
  } tick_cycle_breaker{tick};
  if (policy == nullptr) {
    engine.schedule_every(config.detection_period_s, [&] {
      if (engine.now() > horizon) return false;
      attempt_detection();
      return engine.now() < horizon;
    });
  } else {
    // Self-rescheduling task: the policy picks every next interval. The
    // closure captures its own handle (so the copies queued into the engine
    // keep it alive), which is an ownership cycle — TickCycleBreaker above
    // severs it on exit, or the function object would leak.
    tick = std::make_shared<std::function<void()>>();
    *tick = [&, tick] {
      if (engine.now() > horizon) return;
      attempt_detection();
      SchedulerState state;
      state.soc = battery.soc();
      state.recent_intake_w = smoothed_intake_w;
      state.detection_energy_j = config.detection.total_j();
      const double interval = policy->next_interval_s(state);
      ensure(interval > 0.0, "detection policy returned non-positive interval");
      result.trace.record("interval_s", engine.now(), interval);
      if (engine.now() + interval <= horizon) engine.schedule_in(interval, *tick);
    };
    engine.schedule_in(config.detection_period_s, *tick);
  }

  engine.run_until(horizon + 1.0);
  result.final_soc = battery.soc();
  return result;
}

}  // namespace

DaySimulationResult simulate_day(const DeviceConfig& config,
                                 const hv::DualSourceHarvester& harvester,
                                 const hv::DayProfile& profile) {
  return run_simulation(config, harvester, profile, nullptr);
}

DaySimulationResult simulate_day_with_policy(const DeviceConfig& config,
                                             const hv::DualSourceHarvester& harvester,
                                             const hv::DayProfile& profile,
                                             const DetectionPolicy& policy) {
  return run_simulation(config, harvester, profile, &policy);
}

hv::DayProfile scale_profile_lux(const hv::DayProfile& profile, double factor) {
  ensure(factor >= 0.0, "scale_profile_lux: negative factor");
  hv::DayProfile scaled = profile;
  for (hv::EnvironmentSegment& seg : scaled) seg.env.lux *= factor;
  return scaled;
}

MultiDayResult simulate_days(const DeviceConfig& config,
                             const hv::DualSourceHarvester& harvester,
                             const hv::DayProfile& base_profile, int days,
                             Rng& rng, double lux_sigma) {
  ensure(days >= 1, "simulate_days: need at least one day");
  ensure(lux_sigma >= 0.0, "simulate_days: negative lux sigma");
  MultiDayResult result;
  DeviceConfig day_config = config;
  for (int day = 0; day < days; ++day) {
    const double factor = std::exp(rng.normal(0.0, lux_sigma));
    const hv::DayProfile profile = scale_profile_lux(base_profile, factor);
    DaySimulationResult r = simulate_day(day_config, harvester, profile);
    result.min_soc = std::min({result.min_soc, r.final_soc,
                               r.trace.summarize("soc").min()});
    result.final_soc = r.final_soc;
    result.total_detections += r.detections_completed;
    result.total_skipped += r.detections_skipped;
    day_config.initial_soc = r.final_soc;  // carry the battery over
    result.days.push_back(std::move(r));
  }
  return result;
}

}  // namespace iw::platform
