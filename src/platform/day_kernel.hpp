// Shared physics kernel for one simulated device-day.
//
// Two drivers produce `DaySimulationResult`s: the discrete-event engine path
// in device.cpp (the oracle) and the allocation-free fast path in
// fast_day.cpp. Their contract is bit-identical results, which requires every
// floating-point operation to be the *same* operation in the *same* order.
// To make that hold by construction, all state mutation lives here — one
// struct, defined in one translation unit (device.cpp) — and the two drivers
// only decide *when* each member function fires. A driver must call:
//   * harvest_tick(t) at every harvest tick time the engine would pop,
//   * attempt_detection(t) at every detection event time,
//   * policy_interval(...) right after an attempt when a policy is active,
//   * finish() once, after the last event,
// in exactly the engine's event order (ties included; see fast_day.cpp).
#pragma once

#include "harvest/harvester.hpp"
#include "platform/device.hpp"
#include "power/battery.hpp"

namespace iw::platform {

class DetectionPolicy;  // scheduler.hpp

namespace detail {

struct DayState {
  /// Validates the config, derives the horizon, charges the battery to the
  /// initial SoC and seeds the intake smoother from the profile's t=0
  /// environment — the exact setup sequence of the engine path.
  DayState(const DeviceConfig& config, const hv::DualSourceHarvester& harvester,
           const hv::DayProfile& profile, DaySimulationResult& result);

  /// One charging-integration tick at absolute time `t`: samples the
  /// environment at the middle of the elapsed tick, charges the battery,
  /// applies the sleep drain, updates the intake smoother and the SoC
  /// minimum, and (when enabled) records the trace samples.
  void harvest_tick(double t);

  /// One detection attempt at time `t`; returns true when it completed.
  bool attempt_detection(double t);

  /// Queries `policy` for the next interval from the current battery and
  /// intake state (validating it), recording it when tracing.
  double policy_interval(const DetectionPolicy& policy, double t);

  /// Seals the result (final SoC).
  void finish();

  const DeviceConfig& config;
  const hv::DualSourceHarvester& harvester;
  const hv::DayProfile& profile;
  double horizon = 0.0;
  pwr::LipoBattery battery;
  double smoothed_intake_w = 0.0;
  DaySimulationResult& result;

  /// Energy one detection attempt needs, hoisted out of the per-attempt path.
  double detection_need_j = 0.0;
  /// Windowed SoC threshold for the stored-energy gate. The attempt gate
  /// `stored_energy_j() >= detection_need_j` is a comparison against a
  /// monotone function of SoC, so outside a narrow window around the crossing
  /// it is decided by comparing SoC alone: above `gate_hi_soc` the battery
  /// provably clears the gate, below `gate_lo_soc` it provably does not, and
  /// only inside the window is stored_energy_j() evaluated — turning ~10^2
  /// OCV-curve integrations per attempt into one double compare. See the
  /// constructor for the window derivation and the sentinel encodings.
  double gate_lo_soc = -1.0;
  double gate_hi_soc = 2.0;
  /// Per-segment intake cache: environment_at returns a reference into the
  /// (piecewise-constant) profile, so the harvester chain only needs
  /// re-evaluating when the segment — the address — changes.
  const hv::Environment* cached_env = nullptr;
  double cached_intake_w = 0.0;
};

}  // namespace detail
}  // namespace iw::platform
