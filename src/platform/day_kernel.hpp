// Shared physics kernel for one simulated device-day.
//
// Three drivers produce `DaySimulationResult`s: the discrete-event engine
// path in device.cpp (the oracle), the allocation-free scalar fast path in
// fast_day.cpp, and the structure-of-arrays cohort path in cohort_day.cpp.
// Their contract is bit-identical results, which requires every
// floating-point operation to be the *same* operation in the *same* order
// per device. To make that hold by construction, all state mutation lives
// here — one struct, defined in one translation unit (device.cpp) — and the
// drivers only decide *when* each member function fires. A driver must call:
//   * harvest_tick(t) at every harvest tick time the engine would pop — or
//     harvest_tick_env(t, env) when the driver already knows the active
//     profile segment (the cohort path's shared per-shape tick→segment
//     tables), which skips the environment_at lookup but is otherwise the
//     same operation,
//   * attempt_detection(t) at every detection event time,
//   * policy_interval(...) right after an attempt when a policy is active,
//   * finish() once, after the last event,
// in exactly the engine's event order (ties included; see fast_day.cpp).
//
// A DayState is rebindable: the cohort kernel keeps a pool of lanes and
// re-init()s them for each cohort-day, so the per-day setup allocates
// nothing after the pool warms up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "harvest/harvester.hpp"
#include "platform/device.hpp"
#include "platform/scheduler.hpp"
#include "power/battery.hpp"

namespace iw::platform {

namespace detail {

/// Windowed SoC threshold pair for the stored-energy detection gate. The
/// attempt gate `stored_energy_j() >= need_j` is a comparison against a
/// monotone function of SoC, so outside a narrow window around the crossing
/// it is decided by comparing SoC alone: above `hi_soc` the battery provably
/// clears the gate, below `lo_soc` it provably does not, and only inside the
/// window is stored_energy_j() evaluated — turning ~10^2 OCV-curve
/// integrations per attempt into one double compare. The default sentinels
/// (lo = -1, hi = 2) force the exact evaluation on every attempt.
struct DetectionGate {
  double lo_soc = -1.0;
  double hi_soc = 2.0;
};

/// Derives the gate window for one (battery spec, detection cost) pair by
/// bisecting the crossing of the monotone stored-energy integral — ~30 probe
/// integrations. Pure: the result depends only on the arguments, which is
/// what lets the cohort kernel compute it once per distinct pair instead of
/// once per device-day (the scalar paths re-derive it per day; both arrive
/// at bit-identical windows because this is the single shared derivation).
DetectionGate compute_detection_gate(const pwr::LipoBattery::Params& battery,
                                     double need_j);

/// Memo table over compute_detection_gate keyed on the exact (capacity,
/// charge efficiency, need_j) values. One per cohort/worker; not thread-safe.
class DetectionGateCache {
 public:
  const DetectionGate& get(const pwr::LipoBattery::Params& battery, double need_j);
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    double capacity_mah;
    double charge_efficiency;
    double need_j;
    DetectionGate gate;
  };
  std::vector<Entry> entries_;
};

/// Index of the profile segment active at time `t` — the same fmod/scan
/// semantics as environment_at (which is implemented on top of it). The
/// cohort kernel uses this to precompute one tick→segment table per profile
/// *shape* (segment durations + tick grid) and share it across every device
/// and every simulated day on that shape.
std::size_t segment_index_at(const hv::DayProfile& profile, double t);

struct DayState;

/// Flat views into the cohort kernel's parallel per-lane arrays for one clock
/// group (lanes sharing a tick grid). `lane_ids` selects the group's lanes;
/// all other per-lane arrays are indexed by those ids. `times` is the group's
/// shared tick schedule and `seg_tables[lane][k]` the profile segment tick k
/// samples on that lane's shape.
struct CohortGroupRefs {
  DayState* lanes = nullptr;
  const std::size_t* lane_ids = nullptr;
  std::size_t num_lanes = 0;
  /// Lanes [0, num_reg_lanes) of lane_ids qualify for the register-resident
  /// day loop (no trace recording, non-negative detection cost and segment
  /// intakes — see cohort_day.cpp); the rest take the general sweep.
  std::size_t num_reg_lanes = 0;
  const double* times = nullptr;
  std::size_t num_ticks = 0;
  const std::uint32_t* const* seg_tables = nullptr;
  /// Per-lane per-segment harvester intake (indexed by the seg_tables entry;
  /// only segments the shape's tick grid samples are populated). The same
  /// pure intake_w evaluation the scalar path caches per segment visit.
  const double* const* intake_tables = nullptr;
  const DetectionPolicy* const* policies = nullptr;
  /// Per-lane closed-form snapshots of the built-in policies (kOpaque for
  /// custom ones), so the drain loop dispatches inline instead of virtually.
  const PolicyEval* policy_evals = nullptr;
  double* detect_t = nullptr;
  std::uint64_t* detect_seq = nullptr;
  std::uint64_t* harvest_seq = nullptr;
  std::uint64_t* next_seq = nullptr;
  std::uint8_t* detect_alive = nullptr;
};

/// Advances every lane of one clock group through a full day in lockstep:
/// walks the shared tick times, per tick draining each lane's due detections
/// (engine event order, FIFO ties included — see fast_day.cpp) before its
/// tick fires, then drains the detection tails and seals the results. Lives
/// in device.cpp so the per-event hooks and the battery arithmetic inline
/// into one straight-line loop in the kernel's single translation unit.
void run_cohort_group(const CohortGroupRefs& refs);

struct DayState {
  /// Rebindable empty lane; call init() before any event.
  DayState() = default;

  /// Validates the config, derives the horizon, charges the battery to the
  /// initial SoC and seeds the intake smoother from the profile's t=0
  /// environment — the exact setup sequence of the engine path.
  DayState(const DeviceConfig& config, const hv::DualSourceHarvester& harvester,
           const hv::DayProfile& profile, DaySimulationResult& result);

  /// Same setup, as a rebind. When `gate_cache` is non-null the detection
  /// gate window comes from the cache (bit-identical to deriving it locally;
  /// see compute_detection_gate) so repeated days on the same battery spec
  /// and detection cost skip the bisection entirely.
  void init(const DeviceConfig& config, const hv::DualSourceHarvester& harvester,
            const hv::DayProfile& profile, DaySimulationResult& result,
            DetectionGateCache* gate_cache = nullptr);

  /// One charging-integration tick at absolute time `t`: samples the
  /// environment at the middle of the elapsed tick, charges the battery,
  /// applies the sleep drain, updates the intake smoother and the SoC
  /// minimum, and (when enabled) records the trace samples.
  void harvest_tick(double t);

  /// The same tick with the active segment supplied by the driver (must be
  /// the segment environment_at would return for the tick's sample time —
  /// the cohort kernel guarantees this via its shared per-shape tables).
  void harvest_tick_env(double t, const hv::Environment& env);

  /// One detection attempt at time `t`; returns true when it completed.
  bool attempt_detection(double t);

  /// Queries `policy` for the next interval from the current battery and
  /// intake state (validating it), recording it when tracing.
  double policy_interval(const DetectionPolicy& policy, double t);

  /// policy_interval with the virtual call replaced by the policy's inline
  /// snapshot dispatch — bit-identical (see PolicyEval) but inlineable into
  /// the cohort kernel's drain loop.
  double policy_interval_fast(const PolicyEval& eval, const DetectionPolicy& policy,
                              double t);

  /// Seals the result (final SoC).
  void finish();

  const DeviceConfig* config = nullptr;
  const hv::DualSourceHarvester* harvester = nullptr;
  const hv::DayProfile* profile = nullptr;
  double horizon = 0.0;
  pwr::LipoBattery battery;
  double smoothed_intake_w = 0.0;
  DaySimulationResult* result = nullptr;

  /// Energy one detection attempt needs, hoisted out of the per-attempt path.
  double detection_need_j = 0.0;
  /// Load of one attempt (need / duration), hoisted likewise — one division
  /// per day instead of one per attempt, same operands so the same value.
  double detection_power_w = 0.0;
  /// Completion threshold (0.95 * need), hoisted likewise.
  double detection_complete_j = 0.0;
  /// Windowed SoC threshold for the stored-energy gate; see DetectionGate.
  DetectionGate gate;
  /// Per-segment intake cache: environment_at returns a reference into the
  /// (piecewise-constant) profile, so the harvester chain only needs
  /// re-evaluating when the segment — the address — changes.
  const hv::Environment* cached_env = nullptr;
  double cached_intake_w = 0.0;
};

}  // namespace detail
}  // namespace iw::platform
