// Energy cost of one stress detection (Section IV of the paper).
//
// One detection = 3 s of ECG + GSR acquisition (~600 uJ), 50 us of feature
// extraction on the cluster (~1 uJ at 20 mW), one MLP classification
// (1.2-5.1 uJ depending on the execution target), and optionally a BLE
// notification of the result. The paper's best total is 602.2 uJ.
#pragma once

#include "ble/ble.hpp"
#include "power/processor_power.hpp"
#include "sensors/acquisition.hpp"

namespace iw::platform {

struct DetectionCost {
  double acquisition_j = 0.0;
  double feature_extraction_j = 0.0;
  double classification_j = 0.0;
  double notification_j = 0.0;

  double total_j() const {
    return acquisition_j + feature_extraction_j + classification_j + notification_j;
  }
  /// Active time of one detection (dominated by the acquisition window).
  double duration_s = 3.0;
};

/// Paper-reported cycle count for one MLP classification on the 8-core
/// cluster (61.26 us at 100 MHz => 1.2 uJ at ~19.6 mW). The simulator's own
/// dynamic reproduction of that kernel lands within ~0.1% (see the
/// table3 regression test); the platform energy budget pins the published
/// figure so Table IV stays bit-identical to the paper.
inline constexpr std::uint64_t kPaperClassificationCyclesMulti8 = 6126;

/// A statically certified classification cost from the iw_lint WCET pass:
/// floor <= every dynamic run <= ceiling (cycles on the classification
/// processor). Default-constructed (all zero) means "no certificate".
struct CertifiedKernelCost {
  std::uint64_t floor_cycles = 0;
  std::uint64_t ceiling_cycles = 0;
  bool valid() const { return ceiling_cycles > 0 && floor_cycles <= ceiling_cycles; }
};

struct DetectionCostParams {
  sensors::AcquisitionPlan acquisition = sensors::stress_detection_acquisition();
  /// Feature extraction: 50 us on the parallel cluster (paper).
  double feature_extraction_s = 50e-6;
  pwr::ProcessorPowerModel feature_processor = pwr::mr_wolf_cluster_multi8();
  /// Classification runtime in cycles on the chosen processor.
  std::uint64_t classification_cycles = kPaperClassificationCyclesMulti8;
  pwr::ProcessorPowerModel classification_processor = pwr::mr_wolf_cluster_multi8();
  /// Optional static certificate. When valid(), the classification energy
  /// and duration are budgeted at the certified worst case (ceiling_cycles
  /// x the processor's energy per cycle) instead of classification_cycles,
  /// so the platform budget is an upper bound rather than a point estimate.
  CertifiedKernelCost certificate;
  /// Result notification over BLE (0 bytes = stay silent).
  double notification_bytes = 0.0;
};

/// Assembles the per-detection energy breakdown.
DetectionCost make_detection_cost(const DetectionCostParams& params);

}  // namespace iw::platform
