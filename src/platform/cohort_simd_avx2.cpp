// AVX2 tier of the SIMD cohort kernel (width 4). This TU — and only this TU —
// is compiled with -mavx2 (plus -ffp-contract=off like every tier TU); the
// dispatcher selects it only after __builtin_cpu_supports("avx2") passes.
#include "platform/cohort_simd.hpp"
#include "platform/cohort_simd_impl.hpp"

namespace iw::platform::detail {

#if defined(__AVX2__)
std::size_t run_cohort_group_simd_avx2(const CohortGroupRefs& refs) {
  return run_cohort_simd_ladder<simd::f64x4>(refs);
}
#else
// Compiler lacked -mavx2 support: the dispatcher never selects this tier
// (tier_compiled is false), but the symbol must exist.
std::size_t run_cohort_group_simd_avx2(const CohortGroupRefs&) { return 0; }
#endif

}  // namespace iw::platform::detail
