// Firmware operating modes and their power accounting.
//
// Section II: the Nordic SoC "performs power management various modes of
// operation (sleep, raw data streaming, data acquisition, and processing)".
// This state machine enforces the legal mode transitions, tracks dwell time
// and energy per mode, and exposes the per-mode system power used by the
// duty-cycle analyses.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace iw::platform {

enum class FirmwareMode : std::size_t {
  kSleep = 0,
  kDataAcquisition = 1,
  kProcessing = 2,
  kRawStreaming = 3,
  kTransmit = 4,
};
inline constexpr std::size_t kNumFirmwareModes = 5;

const char* to_string(FirmwareMode mode);

/// System power in each mode (everything on the board that is awake).
struct ModePowerTable {
  std::array<double, kNumFirmwareModes> power_w{};

  /// Default table assembled from the component models: sleep is the
  /// quiescent system; acquisition adds the ECG+GSR front ends; processing
  /// adds the cluster; streaming adds AFEs + radio; transmit is a short
  /// radio burst.
  static ModePowerTable infiniwolf_defaults();
};

class FirmwareStateMachine {
 public:
  explicit FirmwareStateMachine(ModePowerTable table,
                                FirmwareMode initial = FirmwareMode::kSleep);

  FirmwareMode mode() const { return mode_; }
  double now_s() const { return now_s_; }

  /// True when `from -> to` is a legal transition of the firmware.
  static bool transition_allowed(FirmwareMode from, FirmwareMode to);

  /// Advances time in the current mode, charging its power.
  void run_for(double duration_s);

  /// Switches mode at the current time. Throws on illegal transitions.
  void transition(FirmwareMode next);

  /// Total energy consumed so far.
  double total_energy_j() const;
  /// Energy consumed in one mode.
  double mode_energy_j(FirmwareMode mode) const;
  /// Dwell time accumulated in one mode.
  double mode_time_s(FirmwareMode mode) const;

 private:
  ModePowerTable table_;
  FirmwareMode mode_;
  double now_s_ = 0.0;
  std::array<double, kNumFirmwareModes> energy_j_{};
  std::array<double, kNumFirmwareModes> time_s_{};
};

/// Convenience: runs one full detection cycle (sleep -> acquire -> process ->
/// transmit -> sleep) with the paper's phase durations and returns the
/// consumed energy.
double detection_cycle_energy_j(FirmwareStateMachine& fsm, double acquire_s = 3.0,
                                double process_s = 111e-6, double transmit_s = 400e-6);

}  // namespace iw::platform
