// Scalar-array tier of the SIMD cohort kernel: the portable instantiation of
// the wrapper kernel (width 4, plain doubles). Proves the kernel's lane
// logic independently of any ISA, and serves targets without SSE2/AVX2.
#include "platform/cohort_simd.hpp"
#include "platform/cohort_simd_impl.hpp"

namespace iw::platform::detail {

std::size_t run_cohort_group_simd_array(const CohortGroupRefs& refs) {
  return run_cohort_simd_ladder<simd::f64xn<4>>(refs);
}

}  // namespace iw::platform::detail
