// iw_fleetd — longitudinal fleet service CLI.
//
// Runs a reproducible device population (sampled from a fleet seed) for a
// number of simulated days through the sharded longitudinal runner and
// answers the product questions the streamed aggregates exist for:
//
//   * "what fraction of the fleet is self-sustaining at day N?"
//   * "what is the SoC p50/p99, per wearer archetype, over time?"
//
// Memory is O(shard), so populations far past RAM-resident fleet sizes run
// fine: 100k devices x 30 days needs only the active shard plus the
// days x archetypes x bins aggregate. A run can be cut at a day boundary
// (--checkpoint/--checkpoint-day) and continued later (--resume); the
// continued run's aggregates are byte-identical to never having stopped.
//
//   iw_fleetd --devices 100000 --days 30 --threads 8 --json fleet30.json
//   iw_fleetd --devices 50000 --days 60 --checkpoint mid.ckpt --checkpoint-day 30
//   iw_fleetd --devices 50000 --days 60 --resume mid.ckpt --json days60.json
//   iw_fleetd --devices 5000 --days 7 --app   # energy + NN classification
//   iw_fleetd --smoke        # self-check: determinism across threads,
//                            # shard sizes, and a checkpoint/resume split
//
// With --app, a stress-detection pipeline (dataset synthesis, training,
// quantization — see core/app.hpp) is built once up front and shared
// read-only by every shard worker: each device-day then classifies its
// completed detection windows and the `classified` column/JSON keys report
// the population totals. --app-subjects/--app-minutes/--app-epochs size the
// training run (the defaults build in a few seconds; accuracy is secondary
// to duty-cycle realism here).
//
// JSON goes through the shared bench report layer (flat key -> number), so
// downstream tooling reads fleet trajectories and bench trajectories the
// same way.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "common/hostinfo.hpp"
#include "core/app.hpp"
#include "fleet/longitudinal/runner.hpp"
#include "report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--devices N] [--first N] [--seed S] [--days N]\n"
      "          [--shard N] [--threads N] [--bins N] [--query-day N]\n"
      "          [--every N] [--json PATH]\n"
      "          [--app] [--app-subjects N] [--app-minutes F] [--app-epochs N]\n"
      "          [--checkpoint PATH --checkpoint-day N] [--resume PATH]\n"
      "          [--smoke]\n",
      argv0);
  return 2;
}

/// Self-check: one small population, simulated four ways that must agree to
/// the byte — baseline, different thread count, different shard size (which
/// also permutes shard claim order), and a checkpoint/resume split.
int run_smoke() {
  using iw::fleet::LongitudinalConfig;
  using iw::fleet::LongitudinalRunner;

  LongitudinalConfig base;
  base.num_devices = 600;
  base.days = 8;
  base.shard_size = 128;
  base.threads = 1;
  std::printf("iw_fleetd smoke: %llu devices x %d days\n",
              static_cast<unsigned long long>(base.num_devices), base.days);

  const std::string reference = LongitudinalRunner(base).run().stats.serialize();

  LongitudinalConfig threaded = base;
  threaded.threads = 4;
  const bool threads_ok =
      LongitudinalRunner(threaded).run().stats.serialize() == reference;
  std::printf("  threads=4           %s\n", threads_ok ? "ok" : "MISMATCH");

  LongitudinalConfig resharded = base;
  resharded.shard_size = 57;
  resharded.threads = 2;
  const bool shard_ok =
      LongitudinalRunner(resharded).run().stats.serialize() == reference;
  std::printf("  shard=57 threads=2  %s\n", shard_ok ? "ok" : "MISMATCH");

  const std::string ckpt = "iw_fleetd_smoke.ckpt";
  LongitudinalConfig leg1 = base;
  leg1.checkpoint_path = ckpt;
  leg1.checkpoint_day = 3;
  LongitudinalRunner(leg1).run();
  LongitudinalConfig leg2 = base;
  leg2.resume_path = ckpt;
  leg2.threads = 2;
  const bool resume_ok =
      LongitudinalRunner(leg2).run().stats.serialize() == reference;
  std::remove(ckpt.c_str());
  std::printf("  checkpoint@3+resume %s\n", resume_ok ? "ok" : "MISMATCH");

  const bool ok = threads_ok && shard_ok && resume_ok;
  std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  iw::fleet::LongitudinalConfig config;
  config.num_devices = 10000;
  int query_day = 0;
  int every = 0;
  std::string json_path;
  bool smoke = false;
  bool with_app = false;
  iw::core::AppConfig app_config;
  // CLI training defaults lean small: fleet runs want the classification
  // plumbing and duty-cycle costs, not leaderboard accuracy.
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;

  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--devices") == 0 && more) {
      config.num_devices = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--first") == 0 && more) {
      config.first_device = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && more) {
      config.fleet_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && more) {
      config.days = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shard") == 0 && more) {
      config.shard_size =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads") == 0 && more) {
      config.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--bins") == 0 && more) {
      config.soc_bins = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--query-day") == 0 && more) {
      query_day = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--every") == 0 && more) {
      every = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && more) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--app") == 0) {
      with_app = true;
    } else if (std::strcmp(argv[i], "--app-subjects") == 0 && more) {
      with_app = true;
      app_config.dataset.subjects =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--app-minutes") == 0 && more) {
      with_app = true;
      app_config.dataset.minutes_per_level = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--app-epochs") == 0 && more) {
      with_app = true;
      app_config.training.max_epochs =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && more) {
      config.checkpoint_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-day") == 0 && more) {
      config.checkpoint_day = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--resume") == 0 && more) {
      config.resume_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (smoke) return run_smoke();
  if (config.num_devices == 0 || config.days <= 0 || config.threads <= 0 ||
      config.shard_size == 0 || config.soc_bins < 2) {
    return usage(argv[0]);
  }
  if (query_day <= 0 || query_day > config.days) query_day = config.days;
  // Day-table stride: by default print ~12 rows regardless of horizon.
  if (every <= 0) every = config.days <= 12 ? 1 : (config.days + 11) / 12;

  try {
    std::optional<iw::core::StressDetectionApp> app;
    if (with_app) {
      app.emplace(iw::core::StressDetectionApp::build(app_config));
      config.app = &*app;
      std::printf("app: %d subjects x %.1f min/level, %zu epochs; "
                  "test accuracy float %.3f / fixed %.3f\n",
                  app_config.dataset.subjects,
                  app_config.dataset.minutes_per_level,
                  app_config.training.max_epochs, app->float_test_accuracy(),
                  app->fixed_test_accuracy());
    }
    const iw::fleet::LongitudinalRunner runner(config);
    const iw::fleet::LongitudinalResult result = runner.run();
    const iw::fleet::LongitudinalStats& stats = result.stats;
    const int last_day = result.end_day;

    std::printf("fleet: %llu devices (ids %llu..%llu), days %d..%d, "
                "shard %zu, %d thread%s\n",
                static_cast<unsigned long long>(config.num_devices),
                static_cast<unsigned long long>(config.first_device),
                static_cast<unsigned long long>(config.first_device +
                                                config.num_devices - 1),
                result.start_day, last_day, config.shard_size,
                result.threads_used, result.threads_used == 1 ? "" : "s");
    std::printf("wall: %.2f s  (%.0f device-days/sec, peak rss %.1f MiB)\n\n",
                result.wall_s, result.device_days_per_sec,
                static_cast<double>(iw::hostinfo::peak_rss_bytes()) /
                    (1024.0 * 1024.0));

    std::printf("%5s %10s %9s %9s %9s %12s\n", "day", "devices", "frac_ss",
                "soc_p50", "soc_p99", "classified");
    for (int day = 1; day <= last_day; ++day) {
      if (day % every != 0 && day != last_day && day != query_day) continue;
      const auto c = stats.day_counters(day);
      std::printf("%5d %10llu %9.4f %9.4f %9.4f %12llu\n", day,
                  static_cast<unsigned long long>(c.devices),
                  stats.fraction_self_sustaining(day),
                  stats.soc_quantile(day, 0.50), stats.soc_quantile(day, 0.99),
                  static_cast<unsigned long long>(c.classified));
    }

    std::printf("\nself-sustaining at day %d: %.4f\n", query_day,
                stats.fraction_self_sustaining(query_day));
    std::printf("\nSoC by archetype at day %d:\n", last_day);
    std::printf("%16s %10s %9s %9s\n", "archetype", "devices", "soc_p50",
                "soc_p99");
    for (int p = 0; p < iw::fleet::kNumWearerProfiles; ++p) {
      const auto profile = static_cast<iw::fleet::WearerProfile>(p);
      const auto c = stats.day_counters(last_day, profile);
      std::printf("%16s %10llu %9.4f %9.4f\n", iw::fleet::to_string(profile),
                  static_cast<unsigned long long>(c.devices),
                  stats.soc_quantile(last_day, 0.50, profile),
                  stats.soc_quantile(last_day, 0.99, profile));
    }

    if (!config.checkpoint_path.empty()) {
      std::printf("\ncheckpoint written: %s (day %d)\n",
                  config.checkpoint_path.c_str(), last_day);
    }

    if (!json_path.empty()) {
      iw::bench::JsonReport json(json_path);
      json.add("devices", static_cast<double>(config.num_devices));
      json.add("first_device", static_cast<double>(config.first_device));
      json.add("start_day", result.start_day);
      json.add("end_day", last_day);
      json.add("threads", result.threads_used);
      json.add("shard_size", static_cast<double>(config.shard_size));
      json.add("soc_bins", config.soc_bins);
      json.add("wall_s", result.wall_s);
      json.add("device_days_per_sec", result.device_days_per_sec);
      json.add("peak_rss_bytes",
               static_cast<double>(iw::hostinfo::peak_rss_bytes()));
      json.add("query_day", query_day);
      json.add("frac_self_sustaining_query_day",
               stats.fraction_self_sustaining(query_day));
      json.add("app_enabled", with_app ? 1 : 0);
      if (with_app) {
        json.add("app_float_accuracy", app->float_test_accuracy());
        json.add("app_fixed_accuracy", app->fixed_test_accuracy());
      }
      for (int day = 1; day <= last_day; ++day) {
        const std::string prefix = "day" + std::to_string(day);
        json.add(prefix + "_frac_self_sustaining",
                 stats.fraction_self_sustaining(day));
        json.add(prefix + "_soc_p50", stats.soc_quantile(day, 0.50));
        json.add(prefix + "_soc_p99", stats.soc_quantile(day, 0.99));
        json.add(prefix + "_classified",
                 static_cast<double>(stats.day_counters(day).classified));
        for (int p = 0; p < iw::fleet::kNumWearerProfiles; ++p) {
          const auto profile = static_cast<iw::fleet::WearerProfile>(p);
          json.add(prefix + "_soc_p50_" + iw::fleet::to_string(profile),
                   stats.soc_quantile(day, 0.50, profile));
          json.add(prefix + "_soc_p99_" + iw::fleet::to_string(profile),
                   stats.soc_quantile(day, 0.99, profile));
        }
      }
      json.write();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iw_fleetd: %s\n", e.what());
    return 1;
  }
  return 0;
}
