// iw_lint: static analysis front end for rvsim program images.
//
// Three modes:
//
//   iw_lint --kernels [--json]
//       Self-check over every kernel shipped in src/kernels: each image is
//       analyzed under all three timing profiles. The run fails (exit 1) if
//       a kernel has any error under its intended profile, if a kernel that
//       needs Xpulp/FPU features is NOT rejected under the IBEX profile, or
//       if any profile reports a structural (non-ISA) error anywhere.
//
//   iw_lint --wcet [--json]
//       Static energy certification (DESIGN.md §16): every shipped kernel is
//       analyzed interprocedurally AND executed once under its intended
//       profile, and the tool reports the sandwich
//           floor (static min) <= dynamic cycles <= ceiling (static WCET)
//       plus the composed maximum stack depth. Exit 1 unless every row is
//       sound (finite ceiling, sandwich holds).
//
//   iw_lint --traces [--json]
//       Superblock-trace report over the same kernels (DESIGN.md §14): per
//       kernel, the certified basic-block and hardware-loop counts, the
//       static cycle floor, and — from running the bare image on a budgeted
//       Machine — how many traces compiled and what fraction of the dynamic
//       instruction stream they covered. Bare images carry no weights or
//       sensor data, so kernels that chase zeroed config pointers fault out
//       of bounds and cluster kernels can spin at the open barrier until the
//       budget trips; such rows are marked `partial` and still report the
//       coverage seen up to the stop.
//
//   iw_lint [--asm] [--profile NAME] [--entry SYM|ADDR] [--mem BYTES]
//           [--strict-indirect] [--json] FILE
//       Assembles FILE (with --asm, or when it ends in .s/.S/.asm) or loads
//       it as a raw little-endian word image at address 0, then analyzes it
//       under the chosen profile (default ri5cy). Prints the human report
//       (or JSON with --json); exit 1 when error diagnostics were produced.
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asmx/assembler.hpp"
#include "common/error.hpp"
#include "kernels/runner.hpp"
#include "kernels/wcet.hpp"
#include "rvsim/analysis/analysis.hpp"
#include "rvsim/machine.hpp"
#include "rvsim/memory.hpp"
#include "rvsim/timing.hpp"
#include "rvsim/trace.hpp"

namespace {

using iw::rv::analysis::AnalysisReport;
using iw::rv::analysis::DiagKind;
using iw::rv::analysis::Severity;

int usage() {
  std::fprintf(stderr,
               "usage: iw_lint --kernels [--json]\n"
               "       iw_lint --wcet [--json]\n"
               "       iw_lint --traces [--json]\n"
               "       iw_lint [--asm] [--profile cortex-m4f|ibex|ri5cy] "
               "[--entry SYM|ADDR]\n"
               "               [--mem BYTES] [--strict-indirect] [--json] FILE\n");
  return 2;
}

iw::rv::TimingProfile profile_by_name(const std::string& name) {
  if (name == "cortex-m4f" || name == "cortex_m4f" || name == "m4f") {
    return iw::rv::cortex_m4f();
  }
  if (name == "ibex") return iw::rv::ibex();
  if (name == "ri5cy") return iw::rv::ri5cy();
  iw::fail("iw_lint: unknown profile '" + name + "'");
}

AnalysisReport analyze_image(const iw::asmx::Program& program, std::uint32_t entry,
                             const iw::rv::TimingProfile& profile,
                             std::size_t mem_bytes, bool strict_indirect) {
  iw::rv::Memory mem(mem_bytes);
  mem.write_words(program.base, std::span<const std::uint32_t>(program.words));
  iw::rv::analysis::AnalyzeOptions options;
  options.indirect_jump_is_error = strict_indirect;
  return iw::rv::analysis::analyze(mem, entry, profile, options);
}

/// True when every error diagnostic is an ISA-support mismatch — the only
/// acceptable reason for a shipped kernel to fail under a foreign profile.
bool only_isa_errors(const AnalysisReport& report) {
  for (const auto& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (d.kind != DiagKind::kUnsupportedInstruction) return false;
  }
  return true;
}

int lint_kernels(bool json) {
  const std::vector<iw::kernels::KernelImage> images =
      iw::kernels::reference_kernel_images();
  const iw::rv::TimingProfile profiles[] = {iw::rv::cortex_m4f(), iw::rv::ibex(),
                                            iw::rv::ri5cy()};
  bool failed = false;
  std::ostringstream js;
  js << "[";
  if (!json) {
    std::printf("%-20s %-12s %14s %14s %14s\n", "kernel", "intended",
                profiles[0].name.c_str(), profiles[1].name.c_str(),
                profiles[2].name.c_str());
  }
  bool first = true;
  for (const iw::kernels::KernelImage& image : images) {
    std::string cells[3];
    for (int p = 0; p < 3; ++p) {
      const AnalysisReport report = analyze_image(
          image.program, image.entry, profiles[p], image.mem_bytes, false);
      const bool intended = profiles[p].name == image.profile.name;
      if (intended && !report.ok()) {
        failed = true;
        std::fprintf(stderr, "FAIL: %s has errors under its intended profile:\n%s",
                     image.name.c_str(), report.to_text().c_str());
      }
      if (!only_isa_errors(report)) {
        failed = true;
        std::fprintf(stderr,
                     "FAIL: %s has structural (non-ISA) errors under %s:\n%s",
                     image.name.c_str(), profiles[p].name.c_str(),
                     report.to_text().c_str());
      }
      if (image.expect_reject_on_ibex && profiles[p].name == "ibex" &&
          report.ok()) {
        failed = true;
        std::fprintf(stderr,
                     "FAIL: %s was expected to be rejected under ibex but passed\n",
                     image.name.c_str());
      }
      cells[p] = report.ok() ? ("ok min=" + std::to_string(report.min_cycles))
                             : (std::to_string(report.error_count()) + " err");
      if (json) {
        if (!first) js << ",";
        first = false;
        js << "{\"kernel\":\"" << image.name << "\",\"profile\":\""
           << profiles[p].name << "\",\"intended\":" << (intended ? "true" : "false")
           << ",\"report\":" << report.to_json() << "}";
      }
    }
    if (!json) {
      std::printf("%-20s %-12s %14s %14s %14s\n", image.name.c_str(),
                  image.profile.name.c_str(), cells[0].c_str(), cells[1].c_str(),
                  cells[2].c_str());
    }
  }
  js << "]";
  if (json) std::printf("%s\n", js.str().c_str());
  if (!json) {
    std::printf("%s\n", failed ? "FAIL" : "ok: all kernels lint clean under their "
                                          "intended profiles");
  }
  return failed ? 1 : 0;
}

int lint_wcet(bool json) {
  const std::vector<iw::kernels::WcetRow> rows =
      iw::kernels::certified_kernel_rows();
  if (json) {
    std::printf("%s\n", iw::kernels::wcet_table_json(rows).c_str());
  } else {
    std::printf("%s", iw::kernels::wcet_table_text(rows).c_str());
  }
  const bool sound = iw::kernels::all_sound(rows);
  if (!sound) {
    for (const iw::kernels::WcetRow& row : rows) {
      if (row.sound) continue;
      const std::string ceiling =
          row.ceiling_cycles == iw::rv::analysis::kUnboundedCycles
              ? "unbounded"
              : std::to_string(row.ceiling_cycles);
      std::fprintf(stderr,
                   "FAIL: %s (%s) is not certified: floor=%llu dynamic=%llu "
                   "ceiling=%s\n",
                   row.name.c_str(), row.profile_name.c_str(),
                   static_cast<unsigned long long>(row.floor_cycles),
                   static_cast<unsigned long long>(row.dynamic_cycles),
                   ceiling.c_str());
    }
  } else if (!json) {
    std::printf("ok: every kernel's dynamic cycle count sits inside its "
                "static [floor, ceiling] certificate\n");
  }
  return sound ? 0 : 1;
}

int lint_traces(bool json) {
  iw::rv::analysis::install_load_verifier();
  const std::vector<iw::kernels::KernelImage> images =
      iw::kernels::reference_kernel_images();
  // Enough budget for every well-formed kernel to halt on a bare image.
  constexpr std::uint64_t kBudget = 20'000'000;

  if (!json) {
    std::printf("%-20s %-12s %7s %8s %11s %7s %12s %7s %8s\n", "kernel",
                "profile", "blocks", "hwloops", "min_cycles", "traces",
                "instrs", "cov%", "run");
  }
  std::ostringstream js;
  js << "[";
  bool first = true;
  for (const iw::kernels::KernelImage& image : images) {
    const AnalysisReport report = analyze_image(
        image.program, image.entry, image.profile, image.mem_bytes, false);

    iw::rv::Machine machine(image.profile, image.mem_bytes);
    machine.set_trace_mode(true);
    machine.load_program(std::span<const std::uint32_t>(image.program.words),
                         image.program.base);
    bool completed = true;
    try {
      machine.run(image.entry, kBudget);
    } catch (const iw::Error&) {
      // Budget trip or a bare-image fault (zeroed config pointers): the
      // counters still describe everything executed up to the stop.
      completed = false;
    }
    const std::uint64_t instructions = machine.core().instructions();
    const std::uint64_t traced = machine.core().trace_instructions();
    const double coverage =
        instructions == 0
            ? 0.0
            : 100.0 * static_cast<double>(traced) / static_cast<double>(instructions);
    const std::uint64_t compiled =
        machine.trace_space() != nullptr ? machine.trace_space()->stats().compiled : 0;

    if (json) {
      if (!first) js << ",";
      first = false;
      js << "{\"kernel\":\"" << image.name << "\",\"profile\":\""
         << image.profile.name << "\",\"blocks\":" << report.blocks.size()
         << ",\"hwloops\":" << report.loops.size()
         << ",\"min_cycles\":" << report.min_cycles
         << ",\"traces_compiled\":" << compiled
         << ",\"instructions\":" << instructions
         << ",\"trace_instructions\":" << traced << ",\"coverage_pct\":"
         << coverage << ",\"completed\":" << (completed ? "true" : "false")
         << "}";
    } else {
      std::printf("%-20s %-12s %7zu %8zu %11llu %7llu %12llu %6.1f%% %8s\n",
                  image.name.c_str(), image.profile.name.c_str(),
                  report.blocks.size(), report.loops.size(),
                  static_cast<unsigned long long>(report.min_cycles),
                  static_cast<unsigned long long>(compiled),
                  static_cast<unsigned long long>(instructions), coverage,
                  completed ? "halted" : "partial");
    }
  }
  js << "]";
  if (json) std::printf("%s\n", js.str().c_str());
  return 0;
}

bool looks_like_asm(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".s" || ext == ".S" || ext == ".asm";
}

int lint_file(const std::string& path, bool force_asm, const std::string& profile_name,
              const std::string& entry_spec, std::size_t mem_bytes,
              bool strict_indirect, bool json) {
  const iw::rv::TimingProfile profile = profile_by_name(profile_name);

  iw::asmx::Program program;
  if (force_asm || looks_like_asm(path)) {
    std::ifstream in(path);
    if (!in) iw::fail("iw_lint: cannot open " + path);
    std::ostringstream source;
    source << in.rdbuf();
    program = iw::asmx::assemble(source.str());
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) iw::fail("iw_lint: cannot open " + path);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    iw::ensure(bytes.size() % 4 == 0,
               "iw_lint: raw image size must be a multiple of 4 bytes");
    program.words.resize(bytes.size() / 4);
    std::memcpy(program.words.data(), bytes.data(), bytes.size());
  }

  std::uint32_t entry = 0;
  if (!entry_spec.empty()) {
    if (program.symbols.count(entry_spec) != 0) {
      entry = program.symbol(entry_spec);
    } else {
      entry = static_cast<std::uint32_t>(std::stoul(entry_spec, nullptr, 0));
    }
  } else if (program.symbols.count("main") != 0) {
    entry = program.symbol("main");
  }

  if (mem_bytes == 0) {
    mem_bytes = iw::kernels::Layout::kMemBytes;
  }
  iw::ensure(program.end_address() <= mem_bytes,
             "iw_lint: image does not fit the memory size (use --mem)");

  const AnalysisReport report =
      analyze_image(program, entry, profile, mem_bytes, strict_indirect);
  std::printf("%s%s", json ? report.to_json().c_str() : report.to_text().c_str(),
              json ? "\n" : "");
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool kernels = false;
  bool wcet = false;
  bool traces = false;
  bool json = false;
  bool force_asm = false;
  bool strict_indirect = false;
  std::string profile_name = "ri5cy";
  std::string entry_spec;
  std::size_t mem_bytes = 0;
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernels") kernels = true;
    else if (arg == "--wcet") wcet = true;
    else if (arg == "--traces") traces = true;
    else if (arg == "--json") json = true;
    else if (arg == "--asm") force_asm = true;
    else if (arg == "--strict-indirect") strict_indirect = true;
    else if (arg == "--profile" && i + 1 < argc) profile_name = argv[++i];
    else if (arg == "--entry" && i + 1 < argc) entry_spec = argv[++i];
    else if (arg == "--mem" && i + 1 < argc) {
      mem_bytes = std::stoul(argv[++i], nullptr, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (file.empty()) {
      file = arg;
    } else {
      return usage();
    }
  }

  try {
    if (kernels) return lint_kernels(json);
    if (wcet) return lint_wcet(json);
    if (traces) return lint_traces(json);
    if (file.empty()) return usage();
    return lint_file(file, force_asm, profile_name, entry_spec, mem_bytes,
                     strict_indirect, json);
  } catch (const iw::Error& e) {
    std::fprintf(stderr, "iw_lint: %s\n", e.what());
    return 2;
  }
}
