# Empty dependencies file for iw_ble.
# This may be replaced when dependencies are built.
