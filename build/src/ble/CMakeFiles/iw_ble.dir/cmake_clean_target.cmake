file(REMOVE_RECURSE
  "libiw_ble.a"
)
