file(REMOVE_RECURSE
  "CMakeFiles/iw_ble.dir/ble.cpp.o"
  "CMakeFiles/iw_ble.dir/ble.cpp.o.d"
  "libiw_ble.a"
  "libiw_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
