
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/feature_kernel.cpp" "src/kernels/CMakeFiles/iw_kernels.dir/feature_kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/iw_kernels.dir/feature_kernel.cpp.o.d"
  "/root/repo/src/kernels/kernel_source.cpp" "src/kernels/CMakeFiles/iw_kernels.dir/kernel_source.cpp.o" "gcc" "src/kernels/CMakeFiles/iw_kernels.dir/kernel_source.cpp.o.d"
  "/root/repo/src/kernels/runner.cpp" "src/kernels/CMakeFiles/iw_kernels.dir/runner.cpp.o" "gcc" "src/kernels/CMakeFiles/iw_kernels.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rvsim/CMakeFiles/iw_rvsim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/iw_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iw_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
