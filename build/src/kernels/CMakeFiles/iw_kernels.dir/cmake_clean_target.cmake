file(REMOVE_RECURSE
  "libiw_kernels.a"
)
