# Empty dependencies file for iw_kernels.
# This may be replaced when dependencies are built.
