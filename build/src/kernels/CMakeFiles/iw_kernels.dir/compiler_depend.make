# Empty compiler generated dependencies file for iw_kernels.
# This may be replaced when dependencies are built.
