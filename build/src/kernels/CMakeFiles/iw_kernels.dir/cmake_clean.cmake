file(REMOVE_RECURSE
  "CMakeFiles/iw_kernels.dir/feature_kernel.cpp.o"
  "CMakeFiles/iw_kernels.dir/feature_kernel.cpp.o.d"
  "CMakeFiles/iw_kernels.dir/kernel_source.cpp.o"
  "CMakeFiles/iw_kernels.dir/kernel_source.cpp.o.d"
  "CMakeFiles/iw_kernels.dir/runner.cpp.o"
  "CMakeFiles/iw_kernels.dir/runner.cpp.o.d"
  "libiw_kernels.a"
  "libiw_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
