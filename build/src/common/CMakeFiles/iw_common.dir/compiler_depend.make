# Empty compiler generated dependencies file for iw_common.
# This may be replaced when dependencies are built.
