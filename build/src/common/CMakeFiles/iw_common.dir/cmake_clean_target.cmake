file(REMOVE_RECURSE
  "libiw_common.a"
)
