file(REMOVE_RECURSE
  "CMakeFiles/iw_common.dir/error.cpp.o"
  "CMakeFiles/iw_common.dir/error.cpp.o.d"
  "CMakeFiles/iw_common.dir/fixed_point.cpp.o"
  "CMakeFiles/iw_common.dir/fixed_point.cpp.o.d"
  "CMakeFiles/iw_common.dir/rng.cpp.o"
  "CMakeFiles/iw_common.dir/rng.cpp.o.d"
  "CMakeFiles/iw_common.dir/stats.cpp.o"
  "CMakeFiles/iw_common.dir/stats.cpp.o.d"
  "CMakeFiles/iw_common.dir/tanh_lut.cpp.o"
  "CMakeFiles/iw_common.dir/tanh_lut.cpp.o.d"
  "libiw_common.a"
  "libiw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
