file(REMOVE_RECURSE
  "libiw_nn.a"
)
