file(REMOVE_RECURSE
  "CMakeFiles/iw_nn.dir/export.cpp.o"
  "CMakeFiles/iw_nn.dir/export.cpp.o.d"
  "CMakeFiles/iw_nn.dir/network.cpp.o"
  "CMakeFiles/iw_nn.dir/network.cpp.o.d"
  "CMakeFiles/iw_nn.dir/presets.cpp.o"
  "CMakeFiles/iw_nn.dir/presets.cpp.o.d"
  "CMakeFiles/iw_nn.dir/quantize.cpp.o"
  "CMakeFiles/iw_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/iw_nn.dir/quantize16.cpp.o"
  "CMakeFiles/iw_nn.dir/quantize16.cpp.o.d"
  "CMakeFiles/iw_nn.dir/train.cpp.o"
  "CMakeFiles/iw_nn.dir/train.cpp.o.d"
  "libiw_nn.a"
  "libiw_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
