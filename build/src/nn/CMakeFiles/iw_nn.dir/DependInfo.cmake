
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/export.cpp" "src/nn/CMakeFiles/iw_nn.dir/export.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/export.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/iw_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/presets.cpp" "src/nn/CMakeFiles/iw_nn.dir/presets.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/presets.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/iw_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/quantize16.cpp" "src/nn/CMakeFiles/iw_nn.dir/quantize16.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/quantize16.cpp.o.d"
  "/root/repo/src/nn/train.cpp" "src/nn/CMakeFiles/iw_nn.dir/train.cpp.o" "gcc" "src/nn/CMakeFiles/iw_nn.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
