# Empty compiler generated dependencies file for iw_nn.
# This may be replaced when dependencies are built.
