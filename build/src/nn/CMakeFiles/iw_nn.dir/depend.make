# Empty dependencies file for iw_nn.
# This may be replaced when dependencies are built.
