
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/iw_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/domains.cpp" "src/power/CMakeFiles/iw_power.dir/domains.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/domains.cpp.o.d"
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/iw_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/fuel_gauge.cpp" "src/power/CMakeFiles/iw_power.dir/fuel_gauge.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/fuel_gauge.cpp.o.d"
  "/root/repo/src/power/processor_power.cpp" "src/power/CMakeFiles/iw_power.dir/processor_power.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/processor_power.cpp.o.d"
  "/root/repo/src/power/psu.cpp" "src/power/CMakeFiles/iw_power.dir/psu.cpp.o" "gcc" "src/power/CMakeFiles/iw_power.dir/psu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
