# Empty dependencies file for iw_power.
# This may be replaced when dependencies are built.
