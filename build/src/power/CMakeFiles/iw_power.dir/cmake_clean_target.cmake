file(REMOVE_RECURSE
  "libiw_power.a"
)
