file(REMOVE_RECURSE
  "CMakeFiles/iw_power.dir/battery.cpp.o"
  "CMakeFiles/iw_power.dir/battery.cpp.o.d"
  "CMakeFiles/iw_power.dir/domains.cpp.o"
  "CMakeFiles/iw_power.dir/domains.cpp.o.d"
  "CMakeFiles/iw_power.dir/dvfs.cpp.o"
  "CMakeFiles/iw_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/iw_power.dir/fuel_gauge.cpp.o"
  "CMakeFiles/iw_power.dir/fuel_gauge.cpp.o.d"
  "CMakeFiles/iw_power.dir/processor_power.cpp.o"
  "CMakeFiles/iw_power.dir/processor_power.cpp.o.d"
  "CMakeFiles/iw_power.dir/psu.cpp.o"
  "CMakeFiles/iw_power.dir/psu.cpp.o.d"
  "libiw_power.a"
  "libiw_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
