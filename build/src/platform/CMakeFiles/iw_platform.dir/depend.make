# Empty dependencies file for iw_platform.
# This may be replaced when dependencies are built.
