file(REMOVE_RECURSE
  "libiw_platform.a"
)
