file(REMOVE_RECURSE
  "CMakeFiles/iw_platform.dir/detection_cost.cpp.o"
  "CMakeFiles/iw_platform.dir/detection_cost.cpp.o.d"
  "CMakeFiles/iw_platform.dir/device.cpp.o"
  "CMakeFiles/iw_platform.dir/device.cpp.o.d"
  "CMakeFiles/iw_platform.dir/firmware.cpp.o"
  "CMakeFiles/iw_platform.dir/firmware.cpp.o.d"
  "CMakeFiles/iw_platform.dir/scheduler.cpp.o"
  "CMakeFiles/iw_platform.dir/scheduler.cpp.o.d"
  "libiw_platform.a"
  "libiw_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
