file(REMOVE_RECURSE
  "libiw_sensors.a"
)
