# Empty compiler generated dependencies file for iw_sensors.
# This may be replaced when dependencies are built.
