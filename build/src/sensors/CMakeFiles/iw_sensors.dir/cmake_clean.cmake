file(REMOVE_RECURSE
  "CMakeFiles/iw_sensors.dir/acquisition.cpp.o"
  "CMakeFiles/iw_sensors.dir/acquisition.cpp.o.d"
  "CMakeFiles/iw_sensors.dir/afe.cpp.o"
  "CMakeFiles/iw_sensors.dir/afe.cpp.o.d"
  "CMakeFiles/iw_sensors.dir/bus.cpp.o"
  "CMakeFiles/iw_sensors.dir/bus.cpp.o.d"
  "libiw_sensors.a"
  "libiw_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
