file(REMOVE_RECURSE
  "libiw_rvsim.a"
)
