file(REMOVE_RECURSE
  "CMakeFiles/iw_rvsim.dir/cluster.cpp.o"
  "CMakeFiles/iw_rvsim.dir/cluster.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/core.cpp.o"
  "CMakeFiles/iw_rvsim.dir/core.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/encoding.cpp.o"
  "CMakeFiles/iw_rvsim.dir/encoding.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/isa.cpp.o"
  "CMakeFiles/iw_rvsim.dir/isa.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/machine.cpp.o"
  "CMakeFiles/iw_rvsim.dir/machine.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/memory.cpp.o"
  "CMakeFiles/iw_rvsim.dir/memory.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/profile_stats.cpp.o"
  "CMakeFiles/iw_rvsim.dir/profile_stats.cpp.o.d"
  "CMakeFiles/iw_rvsim.dir/timing.cpp.o"
  "CMakeFiles/iw_rvsim.dir/timing.cpp.o.d"
  "libiw_rvsim.a"
  "libiw_rvsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_rvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
