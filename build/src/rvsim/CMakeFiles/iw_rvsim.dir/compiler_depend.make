# Empty compiler generated dependencies file for iw_rvsim.
# This may be replaced when dependencies are built.
