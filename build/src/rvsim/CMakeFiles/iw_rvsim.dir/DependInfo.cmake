
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rvsim/cluster.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/cluster.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/cluster.cpp.o.d"
  "/root/repo/src/rvsim/core.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/core.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/core.cpp.o.d"
  "/root/repo/src/rvsim/encoding.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/encoding.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/encoding.cpp.o.d"
  "/root/repo/src/rvsim/isa.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/isa.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/isa.cpp.o.d"
  "/root/repo/src/rvsim/machine.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/machine.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/machine.cpp.o.d"
  "/root/repo/src/rvsim/memory.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/memory.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/memory.cpp.o.d"
  "/root/repo/src/rvsim/profile_stats.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/profile_stats.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/profile_stats.cpp.o.d"
  "/root/repo/src/rvsim/timing.cpp" "src/rvsim/CMakeFiles/iw_rvsim.dir/timing.cpp.o" "gcc" "src/rvsim/CMakeFiles/iw_rvsim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
