# Empty compiler generated dependencies file for iw_sim.
# This may be replaced when dependencies are built.
