file(REMOVE_RECURSE
  "libiw_sim.a"
)
