file(REMOVE_RECURSE
  "CMakeFiles/iw_sim.dir/engine.cpp.o"
  "CMakeFiles/iw_sim.dir/engine.cpp.o.d"
  "CMakeFiles/iw_sim.dir/trace.cpp.o"
  "CMakeFiles/iw_sim.dir/trace.cpp.o.d"
  "libiw_sim.a"
  "libiw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
