file(REMOVE_RECURSE
  "CMakeFiles/iw_asmx.dir/assembler.cpp.o"
  "CMakeFiles/iw_asmx.dir/assembler.cpp.o.d"
  "libiw_asmx.a"
  "libiw_asmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_asmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
