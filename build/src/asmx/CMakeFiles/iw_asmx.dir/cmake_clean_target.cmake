file(REMOVE_RECURSE
  "libiw_asmx.a"
)
