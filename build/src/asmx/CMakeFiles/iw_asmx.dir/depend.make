# Empty dependencies file for iw_asmx.
# This may be replaced when dependencies are built.
