# Empty compiler generated dependencies file for iw_harvest.
# This may be replaced when dependencies are built.
