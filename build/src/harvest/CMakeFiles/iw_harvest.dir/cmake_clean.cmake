file(REMOVE_RECURSE
  "CMakeFiles/iw_harvest.dir/converters.cpp.o"
  "CMakeFiles/iw_harvest.dir/converters.cpp.o.d"
  "CMakeFiles/iw_harvest.dir/harvester.cpp.o"
  "CMakeFiles/iw_harvest.dir/harvester.cpp.o.d"
  "CMakeFiles/iw_harvest.dir/solar.cpp.o"
  "CMakeFiles/iw_harvest.dir/solar.cpp.o.d"
  "CMakeFiles/iw_harvest.dir/teg.cpp.o"
  "CMakeFiles/iw_harvest.dir/teg.cpp.o.d"
  "libiw_harvest.a"
  "libiw_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
