
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harvest/converters.cpp" "src/harvest/CMakeFiles/iw_harvest.dir/converters.cpp.o" "gcc" "src/harvest/CMakeFiles/iw_harvest.dir/converters.cpp.o.d"
  "/root/repo/src/harvest/harvester.cpp" "src/harvest/CMakeFiles/iw_harvest.dir/harvester.cpp.o" "gcc" "src/harvest/CMakeFiles/iw_harvest.dir/harvester.cpp.o.d"
  "/root/repo/src/harvest/solar.cpp" "src/harvest/CMakeFiles/iw_harvest.dir/solar.cpp.o" "gcc" "src/harvest/CMakeFiles/iw_harvest.dir/solar.cpp.o.d"
  "/root/repo/src/harvest/teg.cpp" "src/harvest/CMakeFiles/iw_harvest.dir/teg.cpp.o" "gcc" "src/harvest/CMakeFiles/iw_harvest.dir/teg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
