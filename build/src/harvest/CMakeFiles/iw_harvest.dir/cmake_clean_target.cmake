file(REMOVE_RECURSE
  "libiw_harvest.a"
)
