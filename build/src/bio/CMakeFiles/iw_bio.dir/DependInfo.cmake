
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/dataset.cpp" "src/bio/CMakeFiles/iw_bio.dir/dataset.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/dataset.cpp.o.d"
  "/root/repo/src/bio/ecg.cpp" "src/bio/CMakeFiles/iw_bio.dir/ecg.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/ecg.cpp.o.d"
  "/root/repo/src/bio/features.cpp" "src/bio/CMakeFiles/iw_bio.dir/features.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/features.cpp.o.d"
  "/root/repo/src/bio/gsr.cpp" "src/bio/CMakeFiles/iw_bio.dir/gsr.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/gsr.cpp.o.d"
  "/root/repo/src/bio/hrv.cpp" "src/bio/CMakeFiles/iw_bio.dir/hrv.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/hrv.cpp.o.d"
  "/root/repo/src/bio/io.cpp" "src/bio/CMakeFiles/iw_bio.dir/io.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/io.cpp.o.d"
  "/root/repo/src/bio/rpeak.cpp" "src/bio/CMakeFiles/iw_bio.dir/rpeak.cpp.o" "gcc" "src/bio/CMakeFiles/iw_bio.dir/rpeak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iw_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
