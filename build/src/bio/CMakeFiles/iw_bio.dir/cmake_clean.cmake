file(REMOVE_RECURSE
  "CMakeFiles/iw_bio.dir/dataset.cpp.o"
  "CMakeFiles/iw_bio.dir/dataset.cpp.o.d"
  "CMakeFiles/iw_bio.dir/ecg.cpp.o"
  "CMakeFiles/iw_bio.dir/ecg.cpp.o.d"
  "CMakeFiles/iw_bio.dir/features.cpp.o"
  "CMakeFiles/iw_bio.dir/features.cpp.o.d"
  "CMakeFiles/iw_bio.dir/gsr.cpp.o"
  "CMakeFiles/iw_bio.dir/gsr.cpp.o.d"
  "CMakeFiles/iw_bio.dir/hrv.cpp.o"
  "CMakeFiles/iw_bio.dir/hrv.cpp.o.d"
  "CMakeFiles/iw_bio.dir/io.cpp.o"
  "CMakeFiles/iw_bio.dir/io.cpp.o.d"
  "CMakeFiles/iw_bio.dir/rpeak.cpp.o"
  "CMakeFiles/iw_bio.dir/rpeak.cpp.o.d"
  "libiw_bio.a"
  "libiw_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
