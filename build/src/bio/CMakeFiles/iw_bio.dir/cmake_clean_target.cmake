file(REMOVE_RECURSE
  "libiw_bio.a"
)
