# Empty dependencies file for iw_bio.
# This may be replaced when dependencies are built.
