file(REMOVE_RECURSE
  "CMakeFiles/iw_core.dir/app.cpp.o"
  "CMakeFiles/iw_core.dir/app.cpp.o.d"
  "CMakeFiles/iw_core.dir/comparison.cpp.o"
  "CMakeFiles/iw_core.dir/comparison.cpp.o.d"
  "CMakeFiles/iw_core.dir/evaluation.cpp.o"
  "CMakeFiles/iw_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/iw_core.dir/sustainability.cpp.o"
  "CMakeFiles/iw_core.dir/sustainability.cpp.o.d"
  "libiw_core.a"
  "libiw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
