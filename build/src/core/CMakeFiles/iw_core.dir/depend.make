# Empty dependencies file for iw_core.
# This may be replaced when dependencies are built.
