file(REMOVE_RECURSE
  "libiw_core.a"
)
