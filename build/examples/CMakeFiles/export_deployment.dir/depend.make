# Empty dependencies file for export_deployment.
# This may be replaced when dependencies are built.
