file(REMOVE_RECURSE
  "CMakeFiles/export_deployment.dir/export_deployment.cpp.o"
  "CMakeFiles/export_deployment.dir/export_deployment.cpp.o.d"
  "export_deployment"
  "export_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
