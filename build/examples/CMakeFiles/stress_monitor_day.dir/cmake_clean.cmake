file(REMOVE_RECURSE
  "CMakeFiles/stress_monitor_day.dir/stress_monitor_day.cpp.o"
  "CMakeFiles/stress_monitor_day.dir/stress_monitor_day.cpp.o.d"
  "stress_monitor_day"
  "stress_monitor_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_monitor_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
