# Empty compiler generated dependencies file for stress_monitor_day.
# This may be replaced when dependencies are built.
