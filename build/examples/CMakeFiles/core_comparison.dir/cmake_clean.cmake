file(REMOVE_RECURSE
  "CMakeFiles/core_comparison.dir/core_comparison.cpp.o"
  "CMakeFiles/core_comparison.dir/core_comparison.cpp.o.d"
  "core_comparison"
  "core_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
