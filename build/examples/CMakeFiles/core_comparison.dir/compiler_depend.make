# Empty compiler generated dependencies file for core_comparison.
# This may be replaced when dependencies are built.
