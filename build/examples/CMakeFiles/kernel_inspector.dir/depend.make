# Empty dependencies file for kernel_inspector.
# This may be replaced when dependencies are built.
