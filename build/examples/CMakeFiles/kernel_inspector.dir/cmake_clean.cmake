file(REMOVE_RECURSE
  "CMakeFiles/kernel_inspector.dir/kernel_inspector.cpp.o"
  "CMakeFiles/kernel_inspector.dir/kernel_inspector.cpp.o.d"
  "kernel_inspector"
  "kernel_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
