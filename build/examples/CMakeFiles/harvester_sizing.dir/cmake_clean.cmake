file(REMOVE_RECURSE
  "CMakeFiles/harvester_sizing.dir/harvester_sizing.cpp.o"
  "CMakeFiles/harvester_sizing.dir/harvester_sizing.cpp.o.d"
  "harvester_sizing"
  "harvester_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvester_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
