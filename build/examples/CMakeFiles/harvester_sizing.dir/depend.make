# Empty dependencies file for harvester_sizing.
# This may be replaced when dependencies are built.
