
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rvsim/test_cluster.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_cluster.cpp.o.d"
  "/root/repo/tests/rvsim/test_core.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_core.cpp.o.d"
  "/root/repo/tests/rvsim/test_decode_fuzz.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_decode_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_decode_fuzz.cpp.o.d"
  "/root/repo/tests/rvsim/test_dma.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_dma.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_dma.cpp.o.d"
  "/root/repo/tests/rvsim/test_encoding.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_encoding.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_encoding.cpp.o.d"
  "/root/repo/tests/rvsim/test_fp_semantics.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_fp_semantics.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_fp_semantics.cpp.o.d"
  "/root/repo/tests/rvsim/test_memory.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_memory.cpp.o.d"
  "/root/repo/tests/rvsim/test_memory_semantics.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_memory_semantics.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_memory_semantics.cpp.o.d"
  "/root/repo/tests/rvsim/test_profile_stats.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_profile_stats.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_profile_stats.cpp.o.d"
  "/root/repo/tests/rvsim/test_semantics.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_semantics.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_semantics.cpp.o.d"
  "/root/repo/tests/rvsim/test_timing.cpp" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_timing.cpp.o" "gcc" "tests/CMakeFiles/test_rvsim.dir/rvsim/test_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rvsim/CMakeFiles/iw_rvsim.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/iw_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
