# Empty dependencies file for test_rvsim.
# This may be replaced when dependencies are built.
