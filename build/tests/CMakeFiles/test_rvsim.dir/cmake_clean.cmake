file(REMOVE_RECURSE
  "CMakeFiles/test_rvsim.dir/rvsim/test_cluster.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_cluster.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_core.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_core.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_decode_fuzz.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_decode_fuzz.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_dma.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_dma.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_encoding.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_encoding.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_fp_semantics.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_fp_semantics.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_memory.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_memory.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_memory_semantics.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_memory_semantics.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_profile_stats.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_profile_stats.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_semantics.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_semantics.cpp.o.d"
  "CMakeFiles/test_rvsim.dir/rvsim/test_timing.cpp.o"
  "CMakeFiles/test_rvsim.dir/rvsim/test_timing.cpp.o.d"
  "test_rvsim"
  "test_rvsim.pdb"
  "test_rvsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rvsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
