
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_export.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_export.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_export.cpp.o.d"
  "/root/repo/tests/nn/test_network.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_network.cpp.o.d"
  "/root/repo/tests/nn/test_quantize.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o.d"
  "/root/repo/tests/nn/test_quantize16.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_quantize16.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_quantize16.cpp.o.d"
  "/root/repo/tests/nn/test_quantized_serialize.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_quantized_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_quantized_serialize.cpp.o.d"
  "/root/repo/tests/nn/test_train.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_train.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_train.cpp.o.d"
  "/root/repo/tests/nn/test_train_variants.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_train_variants.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_train_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/iw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
