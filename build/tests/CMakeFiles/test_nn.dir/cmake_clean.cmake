file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_export.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_export.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_network.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_quantize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_quantize16.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_quantize16.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_quantized_serialize.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_quantized_serialize.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_train.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_train.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/test_train_variants.cpp.o"
  "CMakeFiles/test_nn.dir/nn/test_train_variants.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
