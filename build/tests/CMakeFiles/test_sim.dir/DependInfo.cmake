
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
