
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asmx/test_assembler.cpp" "tests/CMakeFiles/test_asmx.dir/asmx/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/test_asmx.dir/asmx/test_assembler.cpp.o.d"
  "/root/repo/tests/asmx/test_disassembler.cpp" "tests/CMakeFiles/test_asmx.dir/asmx/test_disassembler.cpp.o" "gcc" "tests/CMakeFiles/test_asmx.dir/asmx/test_disassembler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmx/CMakeFiles/iw_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/rvsim/CMakeFiles/iw_rvsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
