file(REMOVE_RECURSE
  "CMakeFiles/test_asmx.dir/asmx/test_assembler.cpp.o"
  "CMakeFiles/test_asmx.dir/asmx/test_assembler.cpp.o.d"
  "CMakeFiles/test_asmx.dir/asmx/test_disassembler.cpp.o"
  "CMakeFiles/test_asmx.dir/asmx/test_disassembler.cpp.o.d"
  "test_asmx"
  "test_asmx.pdb"
  "test_asmx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
