file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/kernels/test_feature_kernel.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_feature_kernel.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_gsr_kernel.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_gsr_kernel.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_kernel_generators.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_kernel_generators.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_kernels.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_parallel_simd.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_parallel_simd.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_simd_kernel.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_simd_kernel.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_table3_regression.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_table3_regression.cpp.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
