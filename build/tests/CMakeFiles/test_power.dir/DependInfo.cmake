
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power/test_domains.cpp" "tests/CMakeFiles/test_power.dir/power/test_domains.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/test_domains.cpp.o.d"
  "/root/repo/tests/power/test_dvfs.cpp" "tests/CMakeFiles/test_power.dir/power/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/test_dvfs.cpp.o.d"
  "/root/repo/tests/power/test_power.cpp" "tests/CMakeFiles/test_power.dir/power/test_power.cpp.o" "gcc" "tests/CMakeFiles/test_power.dir/power/test_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/iw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
