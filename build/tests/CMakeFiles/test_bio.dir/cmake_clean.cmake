file(REMOVE_RECURSE
  "CMakeFiles/test_bio.dir/bio/test_ecg.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_ecg.cpp.o.d"
  "CMakeFiles/test_bio.dir/bio/test_features_dataset.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_features_dataset.cpp.o.d"
  "CMakeFiles/test_bio.dir/bio/test_gsr.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_gsr.cpp.o.d"
  "CMakeFiles/test_bio.dir/bio/test_hrv_extended.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_hrv_extended.cpp.o.d"
  "CMakeFiles/test_bio.dir/bio/test_io.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_io.cpp.o.d"
  "CMakeFiles/test_bio.dir/bio/test_rpeak_hrv.cpp.o"
  "CMakeFiles/test_bio.dir/bio/test_rpeak_hrv.cpp.o.d"
  "test_bio"
  "test_bio.pdb"
  "test_bio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
