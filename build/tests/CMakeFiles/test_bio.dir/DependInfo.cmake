
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/test_ecg.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_ecg.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_ecg.cpp.o.d"
  "/root/repo/tests/bio/test_features_dataset.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_features_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_features_dataset.cpp.o.d"
  "/root/repo/tests/bio/test_gsr.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_gsr.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_gsr.cpp.o.d"
  "/root/repo/tests/bio/test_hrv_extended.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_hrv_extended.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_hrv_extended.cpp.o.d"
  "/root/repo/tests/bio/test_io.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_io.cpp.o.d"
  "/root/repo/tests/bio/test_rpeak_hrv.cpp" "tests/CMakeFiles/test_bio.dir/bio/test_rpeak_hrv.cpp.o" "gcc" "tests/CMakeFiles/test_bio.dir/bio/test_rpeak_hrv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bio/CMakeFiles/iw_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
