file(REMOVE_RECURSE
  "CMakeFiles/test_harvest.dir/harvest/test_harvest.cpp.o"
  "CMakeFiles/test_harvest.dir/harvest/test_harvest.cpp.o.d"
  "test_harvest"
  "test_harvest.pdb"
  "test_harvest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
