# Empty dependencies file for bench_feature_extraction.
# This may be replaced when dependencies are built.
