file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_extraction.dir/bench_feature_extraction.cpp.o"
  "CMakeFiles/bench_feature_extraction.dir/bench_feature_extraction.cpp.o.d"
  "bench_feature_extraction"
  "bench_feature_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
