# Empty dependencies file for bench_table2_teg.
# This may be replaced when dependencies are built.
