file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_teg.dir/bench_table2_teg.cpp.o"
  "CMakeFiles/bench_table2_teg.dir/bench_table2_teg.cpp.o.d"
  "bench_table2_teg"
  "bench_table2_teg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_teg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
