file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_energy.dir/bench_detection_energy.cpp.o"
  "CMakeFiles/bench_detection_energy.dir/bench_detection_energy.cpp.o.d"
  "bench_detection_energy"
  "bench_detection_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
