# Empty compiler generated dependencies file for bench_detection_energy.
# This may be replaced when dependencies are built.
