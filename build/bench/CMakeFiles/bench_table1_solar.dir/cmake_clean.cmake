file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_solar.dir/bench_table1_solar.cpp.o"
  "CMakeFiles/bench_table1_solar.dir/bench_table1_solar.cpp.o.d"
  "bench_table1_solar"
  "bench_table1_solar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
