# Empty dependencies file for bench_float_vs_fixed.
# This may be replaced when dependencies are built.
