# Empty dependencies file for bench_sustainability.
# This may be replaced when dependencies are built.
