file(REMOVE_RECURSE
  "CMakeFiles/bench_sustainability.dir/bench_sustainability.cpp.o"
  "CMakeFiles/bench_sustainability.dir/bench_sustainability.cpp.o.d"
  "bench_sustainability"
  "bench_sustainability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sustainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
