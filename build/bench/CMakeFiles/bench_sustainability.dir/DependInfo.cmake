
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sustainability.cpp" "bench/CMakeFiles/bench_sustainability.dir/bench_sustainability.cpp.o" "gcc" "bench/CMakeFiles/bench_sustainability.dir/bench_sustainability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/iw_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/iw_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/rvsim/CMakeFiles/iw_rvsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/iw_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/iw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/iw_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/iw_power.dir/DependInfo.cmake"
  "/root/repo/build/src/harvest/CMakeFiles/iw_harvest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/iw_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/ble/CMakeFiles/iw_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/iw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
