file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_sweep.dir/bench_dvfs_sweep.cpp.o"
  "CMakeFiles/bench_dvfs_sweep.dir/bench_dvfs_sweep.cpp.o.d"
  "bench_dvfs_sweep"
  "bench_dvfs_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
