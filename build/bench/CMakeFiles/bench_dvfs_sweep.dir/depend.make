# Empty dependencies file for bench_dvfs_sweep.
# This may be replaced when dependencies are built.
