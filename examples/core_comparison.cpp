// Processor comparison on the *trained* stress classifier: trains the paper's
// Network A on synthetic data, then executes the same quantized network on
// all four execution targets of the paper, reporting cycles, latency, energy
// and the resulting classification — the paper's central demonstration.
#include <cstdio>

#include "core/app.hpp"
#include "core/comparison.hpp"

int main() {
  std::printf("InfiniWolf processor comparison (trained stress classifier)\n");
  std::printf("============================================================\n\n");

  iw::core::AppConfig config;
  config.dataset.subjects = 3;
  config.dataset.minutes_per_level = 6.0;
  const iw::core::StressDetectionApp app = iw::core::StressDetectionApp::build(config);
  std::printf("Network A trained: float accuracy %.1f%%, fixed %.1f%% (Q%d)\n\n",
              100.0 * app.float_test_accuracy(), 100.0 * app.fixed_test_accuracy(),
              app.quantized().format().frac_bits);

  // A mid-stress test window.
  iw::bio::RawFeatures window{};
  window[iw::bio::kFeatRmssd] = 0.022;
  window[iw::bio::kFeatSdsd] = 0.018;
  window[iw::bio::kFeatNn50] = 2.0;
  window[iw::bio::kFeatGsrl] = 1.1;
  window[iw::bio::kFeatGsrh] = 0.35;

  std::printf("%-34s %10s %10s %10s %-14s\n", "target", "cycles", "us", "uJ",
              "decision");
  for (iw::kernels::Target target :
       {iw::kernels::Target::kCortexM4, iw::kernels::Target::kIbex,
        iw::kernels::Target::kRi5cySingle, iw::kernels::Target::kRi5cyMulti}) {
    const auto result = app.classify_on_target(window, target);
    std::printf("%-34s %10llu %10.0f %10.2f %-14s\n",
                iw::kernels::target_name(target).c_str(),
                static_cast<unsigned long long>(result.cycles), result.time_s * 1e6,
                result.energy_j * 1e6, iw::bio::to_string(result.level));
  }

  std::printf("\nAll targets compute bit-identical fixed-point outputs; they\n"
              "differ in latency and energy exactly as Tables III/IV describe.\n");
  return 0;
}
