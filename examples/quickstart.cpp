// Quickstart: the InfiniWolf stack in ~60 lines.
//
// Builds the paper's stress-detection pipeline end to end: synthesize
// labeled biosignals, train Network A (5-50-50-3), convert it to fixed
// point, and run one classification on the simulated Mr. Wolf 8-core
// cluster — reporting the cycle count and energy like Tables III/IV.
#include <cstdio>

#include "core/app.hpp"
#include "core/sustainability.hpp"

int main() {
  std::printf("InfiniWolf quickstart\n=====================\n\n");

  // 1. Build the full pipeline (dataset -> train -> quantize -> evaluate).
  iw::core::AppConfig config;
  config.dataset.subjects = 3;
  config.dataset.minutes_per_level = 6.0;
  std::printf("training Network A on synthetic multi-subject ECG+GSR data...\n");
  const iw::core::StressDetectionApp app = iw::core::StressDetectionApp::build(config);
  std::printf("  test accuracy: float %.1f%%, fixed point %.1f%% (chance 33.3%%)\n\n",
              100.0 * app.float_test_accuracy(), 100.0 * app.fixed_test_accuracy());

  // 2. Classify one feature vector on each path.
  iw::bio::RawFeatures window{};
  window[iw::bio::kFeatRmssd] = 0.012;  // low HRV ...
  window[iw::bio::kFeatSdsd] = 0.010;
  window[iw::bio::kFeatNn50] = 0.0;
  window[iw::bio::kFeatGsrl] = 0.7;     // ... frequent steep GSR rises
  window[iw::bio::kFeatGsrh] = 0.55;

  std::printf("classifying one 60 s window (low HRV, strong GSR activity):\n");
  std::printf("  host float      : %s\n",
              iw::bio::to_string(app.classify_host(window)));
  std::printf("  host fixed point: %s\n",
              iw::bio::to_string(app.classify_fixed(window)));

  const auto on_cluster =
      app.classify_on_target(window, iw::kernels::Target::kRi5cyMulti);
  std::printf("  Mr. Wolf 8x RI5CY (ISS): %s in %llu cycles = %.0f us, %.2f uJ\n",
              iw::bio::to_string(on_cluster.level),
              static_cast<unsigned long long>(on_cluster.cycles),
              on_cluster.time_s * 1e6, on_cluster.energy_j * 1e6);

  const auto on_m4 = app.classify_on_target(window, iw::kernels::Target::kCortexM4);
  std::printf("  nRF52832 Cortex-M4 (ISS): %s in %llu cycles = %.0f us, %.2f uJ\n\n",
              iw::bio::to_string(on_m4.level),
              static_cast<unsigned long long>(on_m4.cycles), on_m4.time_s * 1e6,
              on_m4.energy_j * 1e6);

  // 3. Is the watch self-sustainable at a useful detection rate?
  const auto report = iw::core::paper_sustainability_scenario();
  std::printf("self-sustainability (6 h indoor light + body heat):\n");
  std::printf("  %.2f J harvested per day -> up to %.1f detections/minute\n",
              report.harvested_j_per_day, report.detections_per_minute);
  return 0;
}
