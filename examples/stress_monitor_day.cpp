// A day in the life of the bracelet: simulates InfiniWolf through a
// realistic 24 h profile (commute daylight, office light, evening, night on
// the nightstand) with the firmware duty cycle running stress detections,
// and prints the battery/harvest timeline.
#include <cstdio>
#include <string>

#include "common/units.hpp"
#include "core/sustainability.hpp"
#include "harvest/harvester.hpp"
#include "platform/device.hpp"

namespace {

iw::hv::DayProfile realistic_day() {
  using iw::hv::Environment;
  using iw::hv::EnvironmentSegment;
  using iw::units::hours_to_s;

  Environment night;        // asleep, watch on the nightstand
  night.lux = 0.0;
  night.worn = false;

  Environment morning;      // getting ready, artificial light
  morning.lux = 300.0;

  Environment commute;      // outside, cloudy daylight, some airflow
  commute.lux = 8000.0;
  commute.ambient_c = 15.0;
  commute.skin_c = 30.0;
  commute.wind_mps = 3.0;

  Environment office;       // desk work
  office.lux = 500.0;

  Environment evening;      // dim living room
  evening.lux = 150.0;

  return iw::hv::DayProfile{
      {hours_to_s(7.0), night},    // 00:00 - 07:00
      {hours_to_s(1.0), morning},  // 07:00 - 08:00
      {hours_to_s(0.5), commute},  // 08:00 - 08:30
      {hours_to_s(9.0), office},   // 08:30 - 17:30
      {hours_to_s(0.5), commute},  // 17:30 - 18:00
      {hours_to_s(5.0), evening},  // 18:00 - 23:00
      {hours_to_s(1.0), night},    // 23:00 - 24:00
  };
}

}  // namespace

int main() {
  std::printf("InfiniWolf stress monitor - 24 h simulation\n");
  std::printf("===========================================\n\n");

  const iw::hv::DualSourceHarvester harvester =
      iw::hv::DualSourceHarvester::calibrated();
  const iw::hv::DayProfile day = realistic_day();

  iw::platform::DeviceConfig config;
  config.detection = iw::platform::make_detection_cost({});
  config.detection_period_s = 60.0;  // one stress reading per minute
  config.initial_soc = 0.40;
  config.record_trace = true;  // the hourly timeline below reads the trace

  const iw::platform::DaySimulationResult result =
      iw::platform::simulate_day(config, harvester, day);

  std::printf("detections: %llu completed, %llu skipped (battery)\n",
              static_cast<unsigned long long>(result.detections_completed),
              static_cast<unsigned long long>(result.detections_skipped));
  std::printf("energy: harvested %.2f J, consumed %.2f J\n", result.harvested_j,
              result.consumed_j);
  std::printf("battery: SoC %.1f%% -> %.1f%% (%s)\n\n", 100.0 * result.initial_soc,
              100.0 * result.final_soc,
              result.final_soc >= result.initial_soc ? "net gain" : "net loss");

  // Hourly timeline from the trace.
  const iw::sim::TraceChannel& soc = result.trace.channel("soc");
  const iw::sim::TraceChannel& intake = result.trace.channel("intake_w");
  std::printf("%6s %10s %14s   battery\n", "hour", "SoC %%", "intake uW");
  for (int hour = 0; hour < 24; ++hour) {
    const std::size_t index =
        std::min(soc.times.size() - 1, static_cast<std::size_t>(hour) * 60 + 59);
    const double soc_pct = 100.0 * soc.values[index];
    const double intake_uw = intake.values[index] * 1e6;
    std::string bar(static_cast<std::size_t>(soc_pct / 2.0), '#');
    std::printf("%5d: %9.2f %14.1f   |%s\n", hour, soc_pct, intake_uw, bar.c_str());
  }

  std::printf("\nconclusion: at 1 detection/min the bracelet runs energy-%s over\n"
              "this day profile; the paper's indoor-only worst case supports up\n"
              "to ~24 detections/min.\n",
              result.final_soc >= result.initial_soc ? "positive" : "negative");
  return 0;
}
