// Offline analysis of recorded biosignals from CSV files.
//
// Usage:
//   offline_analysis [ecg.csv gsr.csv]
//
// Without arguments the example first synthesizes a 3-minute recording and
// writes it to ./example_ecg.csv / ./example_gsr.csv, then analyzes those
// files — demonstrating the file-based workflow a user with real recordings
// (e.g. converted drivedb data) would follow: load CSV -> detect R peaks ->
// windowed features -> stress report.
#include <cstdio>
#include <fstream>

#include "bio/dataset.hpp"
#include "bio/hrv.hpp"
#include "bio/io.hpp"
#include "bio/rpeak.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  std::string ecg_path = "example_ecg.csv";
  std::string gsr_path = "example_gsr.csv";

  if (argc == 3) {
    ecg_path = argv[1];
    gsr_path = argv[2];
  } else {
    std::printf("no input files given; synthesizing a 3-minute recording...\n");
    iw::Rng rng(2020);
    const auto rr = iw::bio::generate_rr_intervals(
        iw::bio::rr_params_for(iw::bio::StressLevel::kMedium), 180.0, rng);
    const iw::bio::EcgSignal ecg = iw::bio::synthesize_ecg(rr, {}, rng);
    const iw::bio::GsrSignal gsr = iw::bio::synthesize_gsr(
        iw::bio::gsr_params_for(iw::bio::StressLevel::kMedium), 180.0, rng);
    std::ofstream ecg_out(ecg_path), gsr_out(gsr_path);
    iw::bio::save_ecg_csv(ecg_out, ecg);
    iw::bio::save_gsr_csv(gsr_out, gsr);
    std::printf("wrote %s and %s\n\n", ecg_path.c_str(), gsr_path.c_str());
  }

  std::ifstream ecg_in(ecg_path), gsr_in(gsr_path);
  if (!ecg_in.good() || !gsr_in.good()) {
    std::fprintf(stderr, "cannot open %s / %s\n", ecg_path.c_str(), gsr_path.c_str());
    return 1;
  }
  const iw::bio::EcgSignal ecg = iw::bio::load_ecg_csv(ecg_in);
  const iw::bio::GsrSignal gsr = iw::bio::load_gsr_csv(gsr_in);
  std::printf("loaded ECG: %zu samples @ %.0f Hz; GSR: %zu samples @ %.0f Hz\n",
              ecg.samples.size(), ecg.fs_hz, gsr.samples.size(), gsr.fs_hz);

  // Beat detection and global HRV summary.
  const auto peaks = iw::bio::detect_r_peaks(ecg);
  const auto rr = iw::bio::rr_from_peaks(peaks);
  std::printf("detected %zu beats, mean HR %.1f bpm\n", peaks.size(),
              iw::bio::mean_heart_rate_bpm(rr));
  std::printf("HRV: RMSSD %.1f ms, SDSD %.1f ms, NN50 %d\n\n",
              iw::bio::rmssd(rr) * 1000.0, iw::bio::sdsd(rr) * 1000.0,
              iw::bio::nn50(rr));

  // Windowed feature report (the device's view of the recording).
  iw::bio::WindowConfig window;
  window.window_s = 60.0;
  const auto features = iw::bio::extract_windows(ecg, gsr, window);
  std::printf("%8s %10s %10s %8s %8s %8s\n", "window", "RMSSD ms", "SDSD ms", "NN50",
              "GSRL s", "GSRH uS");
  for (std::size_t w = 0; w < features.size(); ++w) {
    const auto& f = features[w];
    std::printf("%8zu %10.1f %10.1f %8.0f %8.2f %8.3f\n", w,
                f[iw::bio::kFeatRmssd] * 1000.0, f[iw::bio::kFeatSdsd] * 1000.0,
                f[iw::bio::kFeatNn50], f[iw::bio::kFeatGsrl], f[iw::bio::kFeatGsrh]);
  }
  std::printf("\nfeed these windows through core::StressDetectionApp to classify\n"
              "them with the paper's Network A (see the quickstart example).\n");
  return 0;
}
