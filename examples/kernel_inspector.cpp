// Developer tool: shows the generated MLP kernels.
//
// Prints the assembly source the kernel generator emits for each execution
// target (for a small 4-6-2 network), the assembled size, and the measured
// cycle counts side by side — useful when modifying the kernels or the
// timing model.
#include <cstdio>
#include <vector>

#include "asmx/assembler.hpp"
#include "common/rng.hpp"
#include "kernels/kernel_source.hpp"
#include "kernels/runner.hpp"
#include "nn/quantize.hpp"

int main(int argc, char** argv) {
  const bool full_source = argc > 1 && std::string(argv[1]) == "--full";

  iw::Rng rng(5);
  const iw::nn::Network net = iw::nn::Network::create({4, 6, 2}, rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  std::vector<float> input{0.3f, -0.2f, 0.8f, -0.5f};
  const auto fixed = qn.quantize_input(input);

  std::printf("kernel inspector: 4-6-2 tanh network, Q%d fixed point\n\n",
              qn.format().frac_bits);
  std::printf("%-34s %10s %12s %10s\n", "target", "words", "instructions",
              "cycles");
  for (iw::kernels::Target target :
       {iw::kernels::Target::kCortexM4, iw::kernels::Target::kIbex,
        iw::kernels::Target::kRi5cySingle, iw::kernels::Target::kRi5cyMulti}) {
    const auto run = iw::kernels::run_fixed_mlp(qn, fixed, target);
    std::printf("%-34s %10s %12llu %10llu\n",
                iw::kernels::target_name(target).c_str(), "-",
                static_cast<unsigned long long>(run.instructions),
                static_cast<unsigned long long>(run.cycles));
  }

  // Show the RI5CY kernel source (the interesting one: hardware loops,
  // post-increment addressing, p.clip).
  iw::kernels::FixedKernelParams params;
  params.frac_bits = qn.format().frac_bits;
  params.range_fixed = qn.tanh_table().range_fixed();
  params.step_mask = qn.tanh_table().step_fixed() - 1;
  params.step_shift = 0;
  while ((1 << params.step_shift) < qn.tanh_table().step_fixed()) ++params.step_shift;
  params.n_layers = 2;
  const std::string table =
      "    .word 4, 6, 0x21000, 0xC0000, 0xC2000\n"
      "    .word 6, 2, 0x21078, 0xC2000, 0xC0000\n";
  const std::string source =
      iw::kernels::fixed_kernel_source(iw::kernels::Flavor::kRi5cy, params, table);
  const iw::asmx::Program program = iw::asmx::assemble(source);
  std::printf("\nRI5CY kernel: %zu words of code+data, entry at 0x%x\n",
              program.words.size(), program.symbol("main"));
  if (full_source) {
    std::printf("\n--- generated source ---------------------------------\n%s\n",
                source.c_str());
    std::printf("--- disassembly of the encoded image -----------------\n%s",
                iw::asmx::disassemble_listing(program.words, program.base,
                                              program.symbols)
                    .c_str());
  } else {
    std::printf("(run with --full to dump the generated assembly source)\n");
  }
  return 0;
}
