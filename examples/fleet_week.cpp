// A week across the fleet: simulates a population of InfiniWolf wearers for
// 7 days and prints aggregate telemetry — battery percentiles, detection
// rates, the self-sustaining fraction, and the stress-classification mix as
// seen through the shared deployed network.
//
// Usage: fleet_week [devices] [days] [threads]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fleet/device_instance.hpp"
#include "fleet/fleet_engine.hpp"

namespace {

void print_percentiles(const char* label, const iw::fleet::FleetStats::Percentiles& p,
                       double scale, const char* unit) {
  std::printf("  %-22s p5 %8.2f   p25 %8.2f   p50 %8.2f   p75 %8.2f   p95 %8.2f %s\n",
              label, scale * p.p5, scale * p.p25, scale * p.p50, scale * p.p75,
              scale * p.p95, unit);
}

}  // namespace

int main(int argc, char** argv) {
  iw::fleet::FleetConfig config;
  config.num_devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  config.days = argc > 2 ? std::atoi(argv[2]) : 7;
  config.threads = argc > 3 ? std::atoi(argv[3])
                            : static_cast<int>(std::thread::hardware_concurrency());
  if (config.threads < 1) config.threads = 1;
  config.fleet_seed = 2020;

  std::printf("InfiniWolf fleet - %zu devices x %d days (%d threads)\n",
              config.num_devices, config.days, config.threads);
  std::printf("==================================================\n\n");

  std::printf("training shared stress-detection app...\n");
  iw::core::AppConfig app_config;
  app_config.dataset.subjects = 3;
  app_config.dataset.minutes_per_level = 4.0;
  app_config.training.max_epochs = 120;
  const iw::core::StressDetectionApp app =
      iw::core::StressDetectionApp::build(app_config);
  std::printf("  float accuracy %.1f%%, fixed-point accuracy %.1f%%\n\n",
              100.0 * app.float_test_accuracy(), 100.0 * app.fixed_test_accuracy());
  config.app = &app;

  const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
  const iw::fleet::FleetStats::Summary s = result.stats.summarize();

  std::printf("simulated %zu device-days in %.2f s (%.0f devices/sec)\n\n",
              config.num_devices * static_cast<std::size_t>(config.days),
              result.wall_s, result.devices_per_sec);

  std::printf("fleet energy & workload\n");
  std::printf("  harvested %.1f J, consumed %.1f J across the fleet\n", s.harvested_j,
              s.consumed_j);
  std::printf("  detections: %llu completed, %llu skipped (battery)\n",
              static_cast<unsigned long long>(s.detections_completed),
              static_cast<unsigned long long>(s.detections_skipped));
  std::printf("  self-sustaining devices: %.1f%%\n\n",
              100.0 * s.fraction_self_sustaining);

  print_percentiles("final SoC", s.final_soc, 100.0, "%");
  print_percentiles("min SoC", s.min_soc, 100.0, "%");
  print_percentiles("detections/min", s.detections_per_min, 1.0, "");
  print_percentiles("mean intake", s.intake_uw, 1.0, "uW");

  std::printf("\nwearer profiles\n");
  for (int p = 0; p < iw::fleet::kNumWearerProfiles; ++p) {
    std::printf("  %-16s %4zu devices\n",
                iw::fleet::to_string(static_cast<iw::fleet::WearerProfile>(p)),
                s.per_profile[static_cast<std::size_t>(p)]);
  }
  std::printf("scheduling policies\n");
  for (int k = 0; k < iw::fleet::kNumPolicyKinds; ++k) {
    std::printf("  %-16s %4zu devices\n",
                iw::fleet::to_string(static_cast<iw::fleet::PolicyKind>(k)),
                s.per_policy[static_cast<std::size_t>(k)]);
  }

  if (s.classified > 0) {
    std::printf("\nstress classifications (sampled windows through the deployed net)\n");
    const double total = static_cast<double>(s.classified);
    std::printf("  none %.1f%%  medium %.1f%%  high %.1f%%  (%llu windows)\n",
                100.0 * static_cast<double>(s.class_counts[0]) / total,
                100.0 * static_cast<double>(s.class_counts[1]) / total,
                100.0 * static_cast<double>(s.class_counts[2]) / total,
                static_cast<unsigned long long>(s.classified));
  }

  std::printf("\nnote: rerunning with any thread count reproduces these numbers\n"
              "bit-for-bit; per-device RNG substreams make the fleet independent\n"
              "of worker scheduling.\n");
  return 0;
}
