// Deployment export: produces the firmware artifacts for a trained stress
// classifier, in the spirit of the FANNCORTEXM toolkit the paper builds on:
//
//   deploy/stress_net.c      -- self-contained C inference source
//   deploy/stress_net.iwq    -- quantized network (lossless, reloadable)
//   deploy/stress_norm.iwn   -- feature-normalizer constants
//
// A device build compiles stress_net.c and feeds it features normalized
// with the stress_norm constants; this simulation stack reloads the same
// artifacts and verifies bit-exactness on its instruction-set simulator.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/app.hpp"
#include "nn/export.hpp"

int main() {
  std::printf("training the stress classifier...\n");
  iw::core::AppConfig config;
  config.dataset.subjects = 3;
  config.dataset.minutes_per_level = 5.0;
  const iw::core::StressDetectionApp app = iw::core::StressDetectionApp::build(config);
  std::printf("  float %.1f%% / fixed %.1f%% test accuracy, Q%d export\n\n",
              100.0 * app.float_test_accuracy(), 100.0 * app.fixed_test_accuracy(),
              app.quantized().format().frac_bits);

  std::filesystem::create_directories("deploy");

  {
    std::ofstream out("deploy/stress_net.c");
    iw::nn::ExportOptions options;
    options.symbol_prefix = "stress_net";
    iw::nn::export_c_source(app.quantized(), options, out);
  }
  {
    std::ofstream out("deploy/stress_net.iwq");
    app.quantized().save(out);
  }
  {
    std::ofstream out("deploy/stress_norm.iwn");
    app.normalizer().save(out);
  }
  std::printf("wrote deploy/stress_net.c, deploy/stress_net.iwq, "
              "deploy/stress_norm.iwn\n");

  // Round-trip check: reload the artifacts and compare a classification.
  std::ifstream net_in("deploy/stress_net.iwq");
  const iw::nn::QuantizedNetwork reloaded = iw::nn::QuantizedNetwork::load(net_in);
  std::ifstream norm_in("deploy/stress_norm.iwn");
  const iw::bio::FeatureNormalizer norm = iw::bio::FeatureNormalizer::load(norm_in);

  iw::bio::RawFeatures window{};
  window[iw::bio::kFeatRmssd] = 0.03;
  window[iw::bio::kFeatSdsd] = 0.025;
  window[iw::bio::kFeatNn50] = 4.0;
  window[iw::bio::kFeatGsrl] = 1.0;
  window[iw::bio::kFeatGsrh] = 0.3;
  const auto features = norm.apply(window);
  const auto a = app.quantized().infer_fixed(app.quantized().quantize_input(features));
  const auto b = reloaded.infer_fixed(reloaded.quantize_input(features));
  std::printf("reloaded artifacts reproduce the original outputs: %s\n",
              a == b ? "yes (bit-exact)" : "NO");
  return a == b ? 0 : 1;
}
