// Design-space exploration with the harvesting models: how much panel area
// and which light exposure does a target detection rate need? Useful when
// adapting the InfiniWolf design to other enclosures or duty cycles.
#include <cstdio>
#include <vector>

#include "common/units.hpp"
#include "core/sustainability.hpp"
#include "harvest/converters.hpp"
#include "harvest/harvester.hpp"
#include "platform/detection_cost.hpp"

int main() {
  std::printf("InfiniWolf harvester sizing study\n");
  std::printf("=================================\n\n");

  const iw::platform::DetectionCost detection = iw::platform::make_detection_cost({});
  std::printf("per-detection energy: %.1f uJ\n\n", detection.total_j() * 1e6);

  // --- 1. Panel area scaling at the paper's indoor scenario. -------------
  std::printf("panel area scaling (6 h @ 700 lx + TEG worst case):\n");
  std::printf("%12s %16s %18s\n", "area scale", "J/day", "detections/min");
  const iw::hv::TegHarvester teg = iw::hv::TegHarvester::calibrated();
  const iw::hv::SolarHarvester base = iw::hv::SolarHarvester::calibrated();
  for (double scale : {0.25, 0.5, 1.0, 1.5, 2.0, 4.0}) {
    iw::hv::PvPanelParams params = base.panel();
    params.area_m2 *= scale;
    const iw::hv::SolarHarvester scaled(params, iw::hv::bq25570());
    const iw::hv::DualSourceHarvester dual(scaled, teg);
    const auto report = iw::core::analyze_sustainability(
        dual, iw::hv::paper_worst_case_day(), detection);
    std::printf("%11.2fx %16.2f %18.1f\n", scale, report.harvested_j_per_day,
                report.detections_per_minute);
  }

  // --- 2. Light exposure: hours of light needed per detection rate. ------
  std::printf("\nlight exposure vs sustainable rate (paper panel, 700 lx):\n");
  std::printf("%14s %16s %18s\n", "lit hours/day", "J/day", "detections/min");
  const iw::hv::DualSourceHarvester dual = iw::hv::DualSourceHarvester::calibrated();
  for (double hours : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
    iw::hv::Environment lit;
    lit.lux = 700.0;
    iw::hv::Environment dark;
    dark.lux = 0.0;
    const iw::hv::DayProfile day{
        {iw::units::hours_to_s(hours), lit},
        {iw::units::hours_to_s(24.0 - hours), dark},
    };
    const auto report = iw::core::analyze_sustainability(dual, day, detection);
    std::printf("%14.0f %16.2f %18.1f\n", hours, report.harvested_j_per_day,
                report.detections_per_minute);
  }

  // --- 3. TEG-only operation (watch under a sleeve, no light). -----------
  std::printf("\nTEG-only operation (no light at all):\n");
  std::printf("%14s %16s %20s\n", "ambient C", "intake uW", "detections/min");
  for (double ambient : {28.0, 25.0, 22.0, 18.0, 15.0}) {
    iw::hv::Environment env;
    env.lux = 0.0;
    env.skin_c = 32.0;
    env.ambient_c = ambient;
    const iw::hv::DayProfile day{{86400.0, env}};
    const auto report = iw::core::analyze_sustainability(dual, day, detection);
    std::printf("%14.0f %16.1f %20.2f\n", ambient,
                iw::units::to_uw(dual.intake_w(env)), report.detections_per_minute);
  }
  std::printf("\nbody heat alone sustains a detection every 1-2 minutes; light\n"
              "exposure sets the headroom above that.\n");
  return 0;
}
