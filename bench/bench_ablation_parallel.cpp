// Ablation: parallel scaling of the cluster from 1 to 8 cores for both
// networks. Shows where the paper's sub-linear 8-core speedups (3.7x on
// Network A, 4.8x on Network B vs one cluster core) come from: fork/barrier
// overhead, load imbalance on narrow layers, and TCDM bank conflicts.
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

namespace {

void scale_network(const char* name, const iw::nn::Network& net) {
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  iw::Rng rng(9);
  std::vector<float> input(net.num_inputs());
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto fixed_input = qn.quantize_input(input);

  iw::bench::print_header(std::string("Ablation - cluster scaling, ") + name);
  std::printf("%8s %12s %10s %12s %14s %14s\n", "cores", "cycles", "speedup",
              "efficiency", "bank stalls", "barrier wait");
  double base = 0.0;
  for (int cores : {1, 2, 4, 8}) {
    const auto run = iw::kernels::run_fixed_mlp_parallel(qn, fixed_input, cores);
    if (cores == 1) base = static_cast<double>(run.cycles);
    const double speedup = base / static_cast<double>(run.cycles);
    std::printf("%8d %12llu %9.2fx %11.0f%% %14llu %14llu\n", cores,
                static_cast<unsigned long long>(run.cycles), speedup,
                100.0 * speedup / cores,
                static_cast<unsigned long long>(run.bank_conflict_stalls),
                static_cast<unsigned long long>(run.barrier_wait_cycles));
  }

  // Peak configuration: 8 cores x packed 16-bit SIMD (2 MACs/cycle/core).
  const iw::nn::QuantizedNetwork16 qn16 = iw::nn::QuantizedNetwork16::from(net);
  const auto simd_input = qn16.quantize_input(input);
  const auto peak = iw::kernels::run_simd_mlp_parallel(qn16, simd_input, 8);
  std::printf("%8s %12llu %9.2fx   (8 cores + 16-bit SIMD, Q%d)\n", "peak",
              static_cast<unsigned long long>(peak.cycles),
              base / static_cast<double>(peak.cycles), qn16.frac_bits());
}

}  // namespace

int main() {
  iw::Rng rng_a(1), rng_b(2);
  const iw::nn::Network net_a = iw::nn::make_network_a(rng_a);
  const iw::nn::Network net_b = iw::nn::make_network_b(rng_b);
  scale_network("Network A", net_a);
  scale_network("Network B", net_b);
  iw::bench::print_note("Network A's 3-neuron output layer idles 5 of 8 cores;");
  iw::bench::print_note("Network B's wide layers amortize the per-layer fork cost better.");
  return 0;
}
