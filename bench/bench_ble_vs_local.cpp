// Quantifies the Section II architecture argument: local end-to-end
// processing (classify on-board, notify the 1-byte result) versus streaming
// the raw ECG + GSR samples to a host over BLE for remote analysis.
#include <cstdio>

#include "../bench/report.hpp"
#include "ble/ble.hpp"
#include "platform/detection_cost.hpp"
#include "sensors/acquisition.hpp"

int main() {
  const iw::ble::BleLink link;
  const iw::sensors::AcquisitionPlan acq = iw::sensors::stress_detection_acquisition();

  // Local: acquire + extract + classify + notify one byte per detection.
  iw::platform::DetectionCostParams local_params;
  local_params.notification_bytes = 1.0;
  const iw::platform::DetectionCost local = iw::platform::make_detection_cost(local_params);

  // Streaming: acquire + ship all raw bytes of the 3 s window.
  const double raw_bytes = acq.bytes();
  const double stream_rate_bps = raw_bytes / acq.duration_s;
  const double radio_j = link.streaming_power_w(stream_rate_bps) * acq.duration_s;
  const double streaming_total = acq.energy_j() + radio_j;

  iw::bench::print_header("Section II - on-board classification vs raw BLE streaming");
  std::printf("%-44s %14s\n", "approach (per 3 s window)", "energy [uJ]");
  std::printf("%-44s %14.1f\n", "local: acquire+extract+classify+notify",
              local.total_j() * 1e6);
  std::printf("%-44s %14.1f\n", "streaming: acquire + BLE raw stream",
              streaming_total * 1e6);
  std::printf("  raw data: %.0f bytes per window (%.0f B/s)\n", raw_bytes,
              stream_rate_bps);
  std::printf("  radio energy per window: %.1f uJ vs %.2f uJ for the result "
              "notification\n",
              radio_j * 1e6, local.notification_j * 1e6);
  std::printf("  local advantage: %.2fx less energy\n",
              streaming_total / local.total_j());

  std::printf("\n  BLE streaming power vs data rate:\n");
  std::printf("  %12s %14s\n", "bytes/s", "radio power uW");
  for (double rate : {32.0, 100.0, 832.0, 2000.0, 10000.0}) {
    std::printf("  %12.0f %14.1f\n", rate, link.streaming_power_w(rate) * 1e6);
  }
  iw::bench::print_note("The paper reports no numeric table for this; the bench");
  iw::bench::print_note("substantiates the architectural claim of Section II.");
  return 0;
}
