// Validates the Section IV feature-extraction budget: the paper reports
// 50 us (1 uJ at 20 mW) for the on-device feature extraction. This bench
// runs the assembly HRV kernel (RMSSD, SDSD, NN50) on the simulated RI5CY
// core across window sizes and reports cycles, time and energy.
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "bio/ecg.hpp"
#include "bio/gsr.hpp"
#include "common/rng.hpp"
#include "kernels/feature_kernel.hpp"
#include "power/processor_power.hpp"

int main() {
  iw::bench::print_header("Section IV - on-device feature extraction budget");
  std::printf("paper: full 5-feature extraction in 50 us (~1 uJ at 20 mW)\n\n");
  std::printf("%12s %12s %12s %12s\n", "beats", "cycles", "us @100MHz", "uJ @20mW");

  const double power_w = iw::pwr::mr_wolf_cluster_multi8().active_power_w;
  iw::Rng rng(1);
  for (std::size_t beats : {20u, 40u, 75u, 150u, 300u}) {
    // RR intervals of a realistic resting series, in integer ms.
    const auto rr_s = iw::bio::generate_rr_intervals(
        iw::bio::rr_params_for(iw::bio::StressLevel::kNone),
        static_cast<double>(beats) * 0.9, rng);
    std::vector<std::int32_t> rr_ms;
    for (double v : rr_s) rr_ms.push_back(static_cast<std::int32_t>(v * 1000.0));
    if (rr_ms.size() < 2) continue;

    const iw::kernels::HrvKernelResult run = iw::kernels::run_hrv_kernel(rr_ms);
    std::printf("%12zu %12llu %12.2f %12.3f\n", rr_ms.size(),
                static_cast<unsigned long long>(run.cycles), run.time_s() * 1e6,
                run.time_s() * power_w * 1e6);
  }
  // GSR slope features over the same windows (32 Hz samples, Q8).
  std::printf("\nGSR slope scan (32 Hz, Q8 fixed point):\n");
  std::printf("%12s %12s %12s %12s\n", "samples", "cycles", "us @100MHz", "slopes");
  for (double seconds : {15.0, 30.0, 60.0, 120.0}) {
    const iw::bio::GsrSignal signal = iw::bio::synthesize_gsr(
        iw::bio::gsr_params_for(iw::bio::StressLevel::kMedium), seconds, rng);
    std::vector<std::int32_t> q8;
    for (float v : signal.samples) {
      q8.push_back(static_cast<std::int32_t>(v * 256.0f));
    }
    const iw::kernels::GsrKernelResult run = iw::kernels::run_gsr_kernel(q8);
    std::printf("%12zu %12llu %12.1f %12d\n", q8.size(),
                static_cast<unsigned long long>(run.cycles), run.time_s() * 1e6,
                run.values.slope_count);
  }

  iw::bench::print_note("");
  iw::bench::print_note("the HRV side costs ~10 cycles/beat and fits the 50 us budget");
  iw::bench::print_note("outright; the GSR scan (~12 cycles/sample) is run incrementally");
  iw::bench::print_note("during the 3 s acquisition, so its latency is hidden.");
  return 0;
}
