// Reproduces Section IV-A: self-sustainability. 6 h of 700 lx indoor light
// plus worst-case TEG harvesting collects ~21.44 J per day; divided by the
// 602.2 uJ detection cost that supports ~24 stress detections per minute.
// Also runs the closed-loop day simulation (battery in the loop) to confirm
// the static analysis.
#include <cstdio>

#include "../bench/report.hpp"
#include "core/sustainability.hpp"
#include "platform/device.hpp"

int main() {
  const iw::core::SustainabilityReport report =
      iw::core::paper_sustainability_scenario();

  iw::bench::print_header("Section IV-A - self-sustainability (static analysis)");
  iw::bench::print_row_header("quantity");
  iw::bench::print_row("harvested energy [J/day]", 21.44, report.harvested_j_per_day,
                       "%14.2f");
  iw::bench::print_row("  solar share [J/day]", 19.44, report.solar_j_per_day, "%14.2f");
  iw::bench::print_row("  TEG share [J/day]", 2.07, report.teg_j_per_day, "%14.2f");
  iw::bench::print_row("energy per detection [uJ]", 602.2,
                       report.energy_per_detection_j * 1e6, "%14.1f");
  iw::bench::print_row("detections per minute", 24.0, report.detections_per_minute,
                       "%14.1f");

  // Closed-loop check: run the device for a day at 24 detections/minute.
  const iw::hv::DualSourceHarvester harvester =
      iw::hv::DualSourceHarvester::calibrated();
  iw::platform::DeviceConfig config;
  config.detection = iw::platform::make_detection_cost({});
  config.detection_period_s = 60.0 / 24.0;
  config.initial_soc = 0.5;
  const iw::platform::DaySimulationResult day =
      iw::platform::simulate_day(config, harvester, iw::hv::paper_worst_case_day());

  std::printf("\n  Closed-loop day simulation at 24 detections/min:\n");
  std::printf("  detections completed %llu / attempted %llu (skipped %llu)\n",
              static_cast<unsigned long long>(day.detections_completed),
              static_cast<unsigned long long>(day.detections_attempted),
              static_cast<unsigned long long>(day.detections_skipped));
  std::printf("  harvested %.2f J, consumed %.2f J, SoC %.3f -> %.3f\n",
              day.harvested_j, day.consumed_j, day.initial_soc, day.final_soc);
  std::printf("  energy-neutral: %s\n",
              day.final_soc >= day.initial_soc - 1e-3 ? "yes" : "no");

  std::printf("\n  Detection-rate sweep (end-of-day SoC from 0.5):\n");
  std::printf("  %14s %14s %10s\n", "det/min", "final SoC", "neutral");
  for (double rate : {1.0, 6.0, 12.0, 24.0, 30.0, 40.0}) {
    iw::platform::DeviceConfig c = config;
    c.detection_period_s = 60.0 / rate;
    const auto r = iw::platform::simulate_day(c, harvester, iw::hv::paper_worst_case_day());
    std::printf("  %14.0f %14.3f %10s\n", rate, r.final_soc,
                r.final_soc >= r.initial_soc - 1e-3 ? "yes" : "no");
  }
  return 0;
}
