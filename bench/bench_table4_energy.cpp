// Reproduces Table IV: energy consumption per classification [uJ] for
// Networks A and B on the four execution targets. Energy = simulated cycles
// / frequency * calibrated active power (see power/processor_power.hpp).
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "core/comparison.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace {

struct PaperRow {
  double m4, ibex, single_ri5cy, multi_ri5cy;
};

void run_network(const char* name, const iw::nn::Network& net, const PaperRow& paper) {
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  iw::Rng rng(4);
  std::vector<float> input(net.num_inputs());
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const iw::core::NetworkComparison cmp =
      iw::core::compare_targets(name, qn, qn.quantize_input(input));

  iw::bench::print_header(std::string("Table IV - Energy per classification [uJ], ") +
                          name);
  iw::bench::print_row_header("target");
  const double paper_vals[4] = {paper.m4, paper.ibex, paper.single_ri5cy,
                                paper.multi_ri5cy};
  for (std::size_t i = 0; i < cmp.rows.size(); ++i) {
    iw::bench::print_row(cmp.rows[i].name, paper_vals[i],
                         cmp.rows[i].energy_j * 1e6, "%14.2f");
  }
  std::printf("  runtimes: ");
  for (const auto& row : cmp.rows) std::printf("%.0f us  ", row.time_s * 1e6);
  std::printf("\n");
}

}  // namespace

int main() {
  iw::Rng rng_a(1), rng_b(2);
  const iw::nn::Network net_a = iw::nn::make_network_a(rng_a);
  const iw::nn::Network net_b = iw::nn::make_network_b(rng_b);
  run_network("Network A", net_a, {5.1, 1.3, 2.9, 1.2});
  run_network("Network B", net_b, {153.8, 31.5, 65.6, 21.6});
  iw::bench::print_note("Power calibration: 10.8 mW (Nordic active), 3.2 mW (IBEX),");
  iw::bench::print_note("12.7 mW (1x RI5CY), 19.6 mW (8x RI5CY, paper's ~20 mW).");
  return 0;
}
