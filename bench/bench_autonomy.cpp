// Long-horizon autonomy: the paper's "wear-and-forget" claim. Simulates 30
// consecutive days of the worst-case indoor scenario with day-to-day light
// variation, at the paper's sustainable detection rate, and checks the
// battery never runs empty. Also sweeps the battery capacity to show the
// headroom the 120 mAh cell provides, and the no-harvest survival time.
#include <cstdio>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "harvest/harvester.hpp"
#include "platform/device.hpp"

int main() {
  const iw::hv::DualSourceHarvester harvester =
      iw::hv::DualSourceHarvester::calibrated();

  iw::platform::DeviceConfig config;
  config.detection = iw::platform::make_detection_cost({});
  config.detection_period_s = 60.0 / 12.0;  // 12 detections/minute (half the max)
  config.initial_soc = 0.5;

  iw::bench::print_header("Wear-and-forget: 30-day autonomy simulation");
  iw::Rng rng(2020);
  const iw::platform::MultiDayResult month = iw::platform::simulate_days(
      config, harvester, iw::hv::paper_worst_case_day(), 30, rng, 0.4);
  std::printf("rate 12 det/min, day-to-day light factor exp(N(0, 0.4)):\n");
  std::printf("  detections: %llu completed, %llu skipped\n",
              static_cast<unsigned long long>(month.total_detections),
              static_cast<unsigned long long>(month.total_skipped));
  std::printf("  SoC: start 50.0%%, minimum %.1f%%, final %.1f%%\n",
              100.0 * month.min_soc, 100.0 * month.final_soc);
  std::printf("  battery never empty: %s\n\n", month.min_soc > 0.02 ? "yes" : "NO");

  std::printf("battery capacity sweep (same month):\n");
  std::printf("%14s %12s %12s %10s\n", "capacity mAh", "min SoC %", "final SoC %",
              "skipped");
  for (double mah : {30.0, 60.0, 120.0, 240.0}) {
    iw::platform::DeviceConfig c = config;
    c.battery.capacity_mah = mah;
    iw::Rng sweep_rng(2020);
    const auto r = iw::platform::simulate_days(
        c, harvester, iw::hv::paper_worst_case_day(), 30, sweep_rng, 0.4);
    std::printf("%14.0f %12.1f %12.1f %10llu\n", mah, 100.0 * r.min_soc,
                100.0 * r.final_soc, static_cast<unsigned long long>(r.total_skipped));
  }

  std::printf("\nno-harvest survival (full 120 mAh battery, dark, not worn):\n");
  iw::hv::Environment dead;
  dead.lux = 0.0;
  dead.worn = false;
  const iw::hv::DayProfile dark{{86400.0, dead}};
  for (double rate : {1.0, 12.0, 24.0}) {
    iw::platform::DeviceConfig c = config;
    c.detection_period_s = 60.0 / rate;
    c.initial_soc = 1.0;
    double days = 0.0;
    iw::Rng survival_rng(1);
    iw::platform::MultiDayResult r =
        iw::platform::simulate_days(c, harvester, dark, 60, survival_rng, 0.0);
    for (const auto& day : r.days) {
      if (day.detections_skipped > 0) break;
      days += 1.0;
    }
    std::printf("  %4.0f det/min: ~%.0f days on the battery alone\n", rate, days);
  }
  iw::bench::print_note("");
  iw::bench::print_note("the 120 mAh cell is a multi-week buffer at the paper's duty");
  iw::bench::print_note("cycle; harvesting makes the horizon indefinite.");
  return 0;
}
