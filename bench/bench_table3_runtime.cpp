// Reproduces Table III: runtime in cycles for Networks A and B on the four
// execution targets (ARM Cortex-M4, Mr. Wolf IBEX, single RI5CY, 8x RI5CY).
//
// The workload is fixed-point MLP inference; cycle counts come from the
// instruction-set simulator running the per-target kernels in src/kernels.
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "platform/detection_cost.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace {

using iw::kernels::KernelRunResult;
using iw::kernels::Target;

struct PaperRow {
  double m4, ibex, single_ri5cy, multi_ri5cy;
};

void run_network(const char* name, const iw::nn::Network& net,
                 const PaperRow& paper) {
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  iw::Rng rng(2020);
  std::vector<float> input(net.num_inputs());
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto fixed_input = qn.quantize_input(input);

  const auto m4 = iw::kernels::run_fixed_mlp(qn, fixed_input, Target::kCortexM4);
  const auto ibex = iw::kernels::run_fixed_mlp(qn, fixed_input, Target::kIbex);
  const auto single = iw::kernels::run_fixed_mlp(qn, fixed_input, Target::kRi5cySingle);
  const auto multi = iw::kernels::run_fixed_mlp(qn, fixed_input, Target::kRi5cyMulti);

  iw::bench::print_header(std::string("Table III - Runtime in cycles, ") + name);
  iw::bench::print_row_header("target");
  iw::bench::print_row("ARM Cortex-M4", paper.m4, static_cast<double>(m4.cycles), "%14.0f");
  iw::bench::print_row("PULP IBEX (SoC domain)", paper.ibex,
                       static_cast<double>(ibex.cycles), "%14.0f");
  iw::bench::print_row("PULP single RI5CY", paper.single_ri5cy,
                       static_cast<double>(single.cycles), "%14.0f");
  iw::bench::print_row("PULP multi RI5CY (8 cores)", paper.multi_ri5cy,
                       static_cast<double>(multi.cycles), "%14.0f");

  const double paper_speed_single = paper.m4 / paper.single_ri5cy;
  const double paper_speed_multi = paper.m4 / paper.multi_ri5cy;
  const double got_speed_single =
      static_cast<double>(m4.cycles) / static_cast<double>(single.cycles);
  const double got_speed_multi =
      static_cast<double>(m4.cycles) / static_cast<double>(multi.cycles);
  std::printf("  speedup vs M4: single RI5CY %.2fx (paper %.2fx), "
              "8x RI5CY %.2fx (paper %.2fx)\n",
              got_speed_single, paper_speed_single, got_speed_multi,
              paper_speed_multi);
  std::printf("  8-core diagnostics: bank-conflict stalls %llu, "
              "barrier wait cycles %llu\n",
              static_cast<unsigned long long>(multi.bank_conflict_stalls),
              static_cast<unsigned long long>(multi.barrier_wait_cycles));
}

}  // namespace

int main() {
  iw::Rng rng_a(1), rng_b(2);
  const iw::nn::Network net_a = iw::nn::make_network_a(rng_a);
  const iw::nn::Network net_b = iw::nn::make_network_b(rng_b);

  run_network("Network A (5-50-50-3)", net_a,
              {30210, 40661, 22772, iw::platform::kPaperClassificationCyclesMulti8});
  run_network("Network B (100..8, 24 hidden)", net_b, {902763, 955588, 519354, 108316});
  return 0;
}
