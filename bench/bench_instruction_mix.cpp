// Instruction-mix analysis of the MLP kernels: where Table III's cycle
// differences come from. For Network A on each target, reports retired
// instructions by timing class and the top opcodes. The IBEX (plain RV32IM)
// kernel retires extra address arithmetic and loop-control instructions that
// hardware loops and post-increment addressing eliminate on RI5CY.
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

namespace {

void report(const char* name, const iw::kernels::KernelRunResult& run) {
  using iw::rv::OpClass;
  const auto& h = run.histogram;
  std::printf("%-30s %10llu %10llu %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", name,
              static_cast<unsigned long long>(run.instructions),
              static_cast<unsigned long long>(run.cycles),
              100.0 * h.class_fraction(OpClass::kLoad),
              100.0 * (h.class_fraction(OpClass::kMul) +
                       h.class_fraction(OpClass::kMac) +
                       h.class_fraction(OpClass::kSimd)),
              100.0 * h.class_fraction(OpClass::kAlu),
              100.0 * h.class_fraction(OpClass::kBranch));
}

}  // namespace

int main() {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  const iw::nn::QuantizedNetwork16 qn16 = iw::nn::QuantizedNetwork16::from(net);
  std::vector<float> input(5);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto fixed = qn.quantize_input(input);

  iw::bench::print_header("Instruction mix - Network A inference kernels");
  std::printf("%-30s %10s %10s %8s %8s %8s %8s\n", "target", "instrs", "cycles",
              "loads", "mul/mac", "alu", "branch");
  report("ARM Cortex-M4 (fixed)",
         iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kCortexM4));
  report("IBEX (fixed, plain RV32IM)",
         iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kIbex));
  report("RI5CY (fixed, Xpulp)",
         iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kRi5cySingle));
  report("8x RI5CY (fixed, parallel)",
         iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kRi5cyMulti));
  report("RI5CY (16-bit SIMD)",
         iw::kernels::run_simd_mlp(qn16, qn16.quantize_input(input)));
  report("8x RI5CY (16-bit SIMD, peak)",
         iw::kernels::run_simd_mlp_parallel(qn16, qn16.quantize_input(input), 8));
  report("Cortex-M4F (float)", iw::kernels::run_float_mlp(net, input));

  std::printf("\n  top opcodes on IBEX vs RI5CY:\n");
  const auto ibex = iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kIbex);
  const auto riscy =
      iw::kernels::run_fixed_mlp(qn, fixed, iw::kernels::Target::kRi5cySingle);
  const auto top = [](const iw::rv::InstructionHistogram& h) {
    std::string out;
    int row = 0;
    for (const auto& [op, count] : h.sorted()) {
      if (row++ == 5) break;
      out += iw::rv::mnemonic(op) + "(" + std::to_string(count) + ") ";
    }
    return out;
  };
  std::printf("    IBEX : %s\n", top(ibex.histogram).c_str());
  std::printf("    RI5CY: %s\n", top(riscy.histogram).c_str());
  iw::bench::print_note("");
  iw::bench::print_note("hardware loops remove the addi+bne pair per MAC; post-increment");
  iw::bench::print_note("loads remove the explicit pointer arithmetic.");
  return 0;
}
