// Ablation: energy-aware scheduling policies. Section II calls for power
// management that "opportunistically takes advantage of periods of
// overabundant energy and survives intervals when the system is starving".
// This bench compares a fixed detection rate against SoC-proportional and
// energy-neutral policies across three day scenarios.
#include <cstdio>

#include "../bench/report.hpp"
#include "common/units.hpp"
#include "harvest/harvester.hpp"
#include "platform/device.hpp"
#include "platform/scheduler.hpp"

namespace {

using iw::platform::DaySimulationResult;
using iw::units::hours_to_s;

iw::hv::DayProfile sunny_day() {
  iw::hv::Environment sun;
  sun.lux = 30000.0;
  iw::hv::Environment indoor;
  indoor.lux = 700.0;
  iw::hv::Environment night;
  night.lux = 0.0;
  return {{hours_to_s(8.0), night},
          {hours_to_s(4.0), sun},
          {hours_to_s(8.0), indoor},
          {hours_to_s(4.0), night}};
}

iw::hv::DayProfile dark_day() {
  iw::hv::Environment dim;
  dim.lux = 50.0;
  iw::hv::Environment night;
  night.lux = 0.0;
  return {{hours_to_s(12.0), dim}, {hours_to_s(12.0), night}};
}

void run_scenario(const char* name, const iw::hv::DayProfile& day,
                  double initial_soc) {
  const iw::hv::DualSourceHarvester harvester =
      iw::hv::DualSourceHarvester::calibrated();
  iw::platform::DeviceConfig config;
  config.detection = iw::platform::make_detection_cost({});
  config.detection_period_s = 60.0 / 12.0;  // fixed baseline: 12/min
  config.initial_soc = initial_soc;

  const iw::platform::FixedRatePolicy fixed(config.detection_period_s);
  const iw::platform::SocProportionalPolicy soc(1.0, 24.0);
  const iw::platform::EnergyNeutralPolicy neutral(0.9, 0.5, 40.0, initial_soc);

  std::printf("\n  scenario: %s (start SoC %.0f%%)\n", name, 100.0 * initial_soc);
  std::printf("  %-18s %12s %10s %12s %12s\n", "policy", "completed", "skipped",
              "final SoC", "harvest J");
  const iw::platform::DetectionPolicy* policies[] = {&fixed, &soc, &neutral};
  for (const auto* policy : policies) {
    const DaySimulationResult r =
        iw::platform::simulate_day_with_policy(config, harvester, day, *policy);
    std::printf("  %-18s %12llu %10llu %11.1f%% %12.2f\n", policy->name().c_str(),
                static_cast<unsigned long long>(r.detections_completed),
                static_cast<unsigned long long>(r.detections_skipped),
                100.0 * r.final_soc, r.harvested_j);
  }
}

}  // namespace

int main() {
  iw::bench::print_header("Ablation - energy-aware detection scheduling");
  run_scenario("paper worst-case day", iw::hv::paper_worst_case_day(), 0.5);
  run_scenario("sunny day", sunny_day(), 0.5);
  run_scenario("dark day, low battery", dark_day(), 0.02);
  iw::bench::print_note("");
  iw::bench::print_note("energy-neutral scales the rate to the harvest: it detects");
  iw::bench::print_note("more in the sun and throttles instead of starving in the dark.");
  return 0;
}
