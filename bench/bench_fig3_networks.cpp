// Reproduces Fig. 3 / Section III: the network architectures and their
// neuron/weight/memory accounting (Network A: 108 neurons, 3003 weights,
// ~14 kB; Network B: 1356 neurons, 81032 weights, ~353 kB).
#include <cstdio>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace {

void describe(const char* name, const iw::nn::Network& net,
              const iw::nn::PaperNetworkCounts& paper) {
  iw::bench::print_header(std::string("Fig. 3 / Section III - ") + name);
  iw::bench::print_row_header("quantity");
  iw::bench::print_row("neurons", static_cast<double>(paper.neurons),
                       static_cast<double>(net.num_neurons()), "%14.0f");
  iw::bench::print_row("weights", static_cast<double>(paper.weights),
                       static_cast<double>(net.num_weights()), "%14.0f");
  iw::bench::print_row("memory footprint [kB]", paper.memory_kb,
                       static_cast<double>(net.memory_footprint_bytes()) / 1024.0,
                       "%14.1f");
  std::printf("  topology: %zu", net.num_inputs());
  for (const auto& layer : net.layers()) std::printf("-%zu", layer.n_out);
  std::printf(" (tanh activations)\n");

  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  std::printf("  fixed-point export: Q%d (%d fractional bits), tanh LUT %zu samples\n",
              qn.format().frac_bits, qn.format().frac_bits,
              qn.tanh_table().samples().size());
}

}  // namespace

int main() {
  iw::Rng rng_a(1), rng_b(2);
  const iw::nn::Network net_a = iw::nn::make_network_a(rng_a);
  const iw::nn::Network net_b = iw::nn::make_network_b(rng_b);
  describe("Network A (stress classifier)", net_a, iw::nn::paper_counts_network_a());
  describe("Network B (scaling study)", net_b, iw::nn::paper_counts_network_b());
  iw::bench::print_note("FANN accounting: 16 B/neuron + 4 B/weight + 8 B/layer record.");
  return 0;
}
