// Reproduces the Section IV float-vs-fixed result: Network A on the
// Cortex-M4F runs in 38478 cycles with the FPU and 30210 cycles in fixed
// point, i.e. the fixed implementation is ~1.3x faster (and the paper
// therefore deploys fixed point).
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "core/comparison.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

int main() {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  std::vector<float> input(5);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const iw::core::FloatFixedComparison cmp =
      iw::core::compare_float_fixed_m4(net, qn, input);

  iw::bench::print_header("Section IV - float (FPU) vs fixed point, Network A on M4F");
  iw::bench::print_row_header("implementation [cycles]");
  iw::bench::print_row("float (FPU, exp-based tanhf)", 38478,
                       static_cast<double>(cmp.float_cycles), "%14.0f");
  iw::bench::print_row("fixed point (Q-format + tanh LUT)", 30210,
                       static_cast<double>(cmp.fixed_cycles), "%14.0f");
  std::printf("  fixed-point speedup: %.2fx (paper: 1.27x)\n", cmp.speedup());

  // Accuracy side of the trade-off: fixed tracks float closely.
  const auto float_out = net.infer(input);
  const auto fixed_out = qn.infer(input);
  std::printf("  outputs (float vs fixed):");
  for (std::size_t i = 0; i < float_out.size(); ++i) {
    std::printf("  %.4f/%.4f", float_out[i], fixed_out[i]);
  }
  std::printf("\n");
  return 0;
}
