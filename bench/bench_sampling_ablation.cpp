// Ablation: ECG sampling rate. The MAX30001-class AFE runs the paper's ECG
// at a modest rate; this bench quantifies what sampling rate the R-peak
// detector and HRV features actually need, by synthesizing the same
// physiological RR series at several rates and comparing the recovered
// features against ground truth.
#include <cmath>
#include <cstdio>

#include "../bench/report.hpp"
#include "bio/ecg.hpp"
#include "bio/hrv.hpp"
#include "bio/rpeak.hpp"
#include "common/rng.hpp"

int main() {
  iw::bench::print_header("Ablation - ECG sampling rate vs feature fidelity");

  // Ground-truth physiology, shared across rates.
  iw::Rng rr_rng(42);
  const auto rr_truth = iw::bio::generate_rr_intervals(
      iw::bio::rr_params_for(iw::bio::StressLevel::kMedium), 300.0, rr_rng);
  const double rmssd_truth = iw::bio::rmssd(rr_truth) * 1000.0;
  const int nn50_truth = iw::bio::nn50(rr_truth);

  std::printf("ground truth: %zu beats, RMSSD %.1f ms, NN50 %d\n\n",
              rr_truth.size(), rmssd_truth, nn50_truth);
  std::printf("%10s %10s %14s %12s %10s %16s\n", "fs [Hz]", "beats", "missed",
              "RMSSD ms", "NN50", "data rate B/s");
  for (double fs : {64.0, 128.0, 256.0, 512.0}) {
    iw::Rng noise_rng(7);
    iw::bio::EcgSynthParams params;
    params.fs_hz = fs;
    const iw::bio::EcgSignal signal =
        iw::bio::synthesize_ecg(rr_truth, params, noise_rng);
    const auto peaks = iw::bio::detect_r_peaks(signal);
    const auto rr = iw::bio::rr_from_peaks(peaks);
    const int missed = static_cast<int>(rr_truth.size()) - static_cast<int>(peaks.size());
    std::printf("%10.0f %10zu %14d %12.1f %10d %16.0f\n", fs, peaks.size(),
                missed, iw::bio::rmssd(rr) * 1000.0, iw::bio::nn50(rr), fs * 3.0);
  }
  iw::bench::print_note("");
  iw::bench::print_note("beat counts are stable from 64 Hz up, but NN50 needs beat");
  iw::bench::print_note("timing finer than its 50 ms threshold: 64 Hz (15.6 ms bins)");
  iw::bench::print_note("miscounts it, while 256 Hz recovers every feature at a");
  iw::bench::print_note("moderate 768 B/s sensor data rate.");
  return 0;
}
