// Fleet engine throughput: device-days/sec across the three day simulators,
// and thread-scaling efficiency.
//
// Simulates a 1000-device fleet for one day (override with `--devices N
// --days N`), once per mode at 1/2/4/8 worker threads each:
//   engine  discrete-event engine per device-day (the oracle, replaying the
//           pre-fast-path fleet loop including its always-on trace recording)
//   fast    allocation-free fast-path segment integrator, one device at a time
//   cohort  structure-of-arrays cohort kernel (the default): each chunk of
//           devices advances in lockstep, sharing segment tables, the
//           detection-gate window and policy objects across the cohort
// Reports device-days/sec, the fast-vs-engine and cohort-vs-fast speedups,
// and per-mode thread scaling; cross-checks both determinism invariants
// (aggregate FleetStats byte-identical at every thread count, and
// byte-identical across all three day simulators). Results land in
// BENCH_fleet_throughput.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "fleet/fleet_engine.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  std::size_t devices = 1000;
  int days = 1;
  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--devices") == 0 && more) {
      devices = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0 && more) {
      days = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--devices N] [--days N]\n", argv[0]);
      return 2;
    }
  }
  if (devices == 0 || days <= 0) {
    std::fprintf(stderr, "need --devices >= 1 and --days >= 1\n");
    return 2;
  }

  iw::bench::print_header("Fleet throughput (" + std::to_string(devices) +
                          " devices x " + std::to_string(days) + " day" +
                          (days == 1 ? "" : "s") + ")");

  iw::fleet::FleetConfig config;
  config.num_devices = devices;
  config.fleet_seed = 2020;
  config.days = days;
  config.chunk_size = 16;

  iw::bench::JsonReport json("BENCH_fleet_throughput.json");
  json.add("devices", static_cast<double>(config.num_devices));
  json.add("days", config.days);
  json.add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));

  std::printf("%8s %8s %16s %10s %12s\n", "path", "threads", "dev-days/sec",
              "speedup", "efficiency");

  struct Mode {
    const char* name;
    bool fast_day;
    bool cohort_day;
  };
  // `fast` pins cohort_day off to isolate the per-device scalar baseline;
  // `cohort` is the shipping default (both flags on).
  constexpr Mode kModes[] = {{"engine", false, false},
                             {"fast", true, false},
                             {"cohort", true, true}};

  bool deterministic = true;
  std::string reference;  // t1 engine-path serialization: the oracle
  double engine_t1_ddps = 0.0;
  double fast_t1_ddps = 0.0;
  double cohort_t1_ddps = 0.0;
  iw::fleet::FleetStats::Summary summary;
  for (const Mode& mode : kModes) {
    config.fast_day = mode.fast_day;
    config.cohort_day = mode.cohort_day;
    double base_ddps = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      config.threads = threads;
      const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
      const std::string serialized = result.stats.serialize();
      if (reference.empty()) {
        reference = serialized;
        summary = result.stats.summarize();
      } else if (serialized != reference) {
        deterministic = false;
      }
      if (threads == 1) {
        base_ddps = result.device_days_per_sec;
        if (mode.cohort_day) {
          cohort_t1_ddps = result.device_days_per_sec;
        } else if (mode.fast_day) {
          fast_t1_ddps = result.device_days_per_sec;
        } else {
          engine_t1_ddps = result.device_days_per_sec;
        }
      }
      const double speedup =
          base_ddps > 0.0 ? result.device_days_per_sec / base_ddps : 0.0;
      const double efficiency = speedup / threads;
      std::printf("%8s %8d %16.1f %9.2fx %11.1f%%\n", mode.name, threads,
                  result.device_days_per_sec, speedup, 100.0 * efficiency);

      const std::string prefix =
          std::string(mode.name) + "_t" + std::to_string(threads);
      json.add(prefix + "_device_days_per_sec", result.device_days_per_sec);
      json.add(prefix + "_wall_s", result.wall_s);
      json.add(prefix + "_speedup", speedup);
      json.add(prefix + "_efficiency", efficiency);
    }
  }

  const double fast_speedup =
      engine_t1_ddps > 0.0 ? fast_t1_ddps / engine_t1_ddps : 0.0;
  const double cohort_speedup =
      fast_t1_ddps > 0.0 ? cohort_t1_ddps / fast_t1_ddps : 0.0;
  std::printf("\n  fast path vs engine path (1 thread): %.2fx\n", fast_speedup);
  std::printf("  cohort kernel vs fast path (1 thread): %.2fx\n",
              cohort_speedup);
  json.add("fast_vs_engine_speedup_t1", fast_speedup);
  json.add("cohort_vs_fast_speedup_t1", cohort_speedup);
  json.add("deterministic_across_threads_and_paths", deterministic ? 1.0 : 0.0);
  json.add("fleet_completed_detections",
           static_cast<double>(summary.detections_completed));
  json.add("fleet_fraction_self_sustaining", summary.fraction_self_sustaining);
  json.add("fleet_final_soc_p50", summary.final_soc.p50);

  iw::bench::print_note(
      deterministic
          ? "aggregate FleetStats byte-identical across thread counts and all "
            "three day simulators"
          : "DETERMINISM VIOLATION: stats differ across thread counts or paths");
  iw::bench::print_note("speedup is bounded by the host's available cores (" +
                        std::to_string(std::thread::hardware_concurrency()) +
                        " here)");
  json.write();
  return deterministic ? 0 : 1;
}
