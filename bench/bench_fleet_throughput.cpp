// Fleet engine throughput: device-days/sec, fast path vs engine path, and
// thread-scaling efficiency.
//
// Simulates a 1000-device fleet for one day, first with the discrete-event
// engine per device-day (the oracle, replaying the pre-fast-path fleet loop
// including its always-on trace recording), then with the allocation-free
// fast-path segment integrator (the default), at 1/2/4/8 worker threads each.
// Reports
// device-days/sec, the fast-vs-engine speedup, and per-mode thread scaling;
// cross-checks both determinism invariants (aggregate FleetStats byte-
// identical at every thread count, and byte-identical between the two day
// simulators). Results land in BENCH_fleet_throughput.json.
#include <cstdio>
#include <string>
#include <thread>

#include "fleet/fleet_engine.hpp"
#include "report.hpp"

int main() {
  iw::bench::print_header("Fleet throughput (1000 devices x 1 day)");

  iw::fleet::FleetConfig config;
  config.num_devices = 1000;
  config.fleet_seed = 2020;
  config.days = 1;
  config.chunk_size = 16;

  iw::bench::JsonReport json("BENCH_fleet_throughput.json");
  json.add("devices", static_cast<double>(config.num_devices));
  json.add("days", config.days);
  json.add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));

  std::printf("%8s %8s %16s %10s %12s\n", "path", "threads", "dev-days/sec",
              "speedup", "efficiency");

  bool deterministic = true;
  std::string reference;  // t1 engine-path serialization: the oracle
  double engine_t1_ddps = 0.0;
  double fast_t1_ddps = 0.0;
  iw::fleet::FleetStats::Summary summary;
  for (const bool fast_day : {false, true}) {
    config.fast_day = fast_day;
    const char* mode = fast_day ? "fast" : "engine";
    double base_ddps = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      config.threads = threads;
      const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
      const std::string serialized = result.stats.serialize();
      if (reference.empty()) {
        reference = serialized;
        summary = result.stats.summarize();
      } else if (serialized != reference) {
        deterministic = false;
      }
      if (threads == 1) {
        base_ddps = result.device_days_per_sec;
        (fast_day ? fast_t1_ddps : engine_t1_ddps) = result.device_days_per_sec;
      }
      const double speedup =
          base_ddps > 0.0 ? result.device_days_per_sec / base_ddps : 0.0;
      const double efficiency = speedup / threads;
      std::printf("%8s %8d %16.1f %9.2fx %11.1f%%\n", mode, threads,
                  result.device_days_per_sec, speedup, 100.0 * efficiency);

      const std::string prefix = std::string(mode) + "_t" + std::to_string(threads);
      json.add(prefix + "_device_days_per_sec", result.device_days_per_sec);
      json.add(prefix + "_wall_s", result.wall_s);
      json.add(prefix + "_speedup", speedup);
      json.add(prefix + "_efficiency", efficiency);
    }
  }

  const double fast_speedup =
      engine_t1_ddps > 0.0 ? fast_t1_ddps / engine_t1_ddps : 0.0;
  std::printf("\n  fast path vs engine path (1 thread): %.2fx\n", fast_speedup);
  json.add("fast_vs_engine_speedup_t1", fast_speedup);
  json.add("deterministic_across_threads_and_paths", deterministic ? 1.0 : 0.0);
  json.add("fleet_completed_detections",
           static_cast<double>(summary.detections_completed));
  json.add("fleet_fraction_self_sustaining", summary.fraction_self_sustaining);
  json.add("fleet_final_soc_p50", summary.final_soc.p50);

  iw::bench::print_note(
      deterministic
          ? "aggregate FleetStats byte-identical across thread counts and both day "
            "simulators"
          : "DETERMINISM VIOLATION: stats differ across thread counts or paths");
  iw::bench::print_note("speedup is bounded by the host's available cores (" +
                        std::to_string(std::thread::hardware_concurrency()) +
                        " here)");
  json.write();
  return deterministic ? 0 : 1;
}
