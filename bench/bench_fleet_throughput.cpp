// Fleet engine throughput: device-days/sec across the three day simulators,
// the SIMD dispatch tiers of the cohort kernel, and thread-scaling
// efficiency.
//
// Simulates a 1000-device fleet for one day (override with `--devices N
// --days N --chunk N`), once per mode at 1/2/4/8 worker threads each:
//   engine  discrete-event engine per device-day (the oracle, replaying the
//           pre-fast-path fleet loop including its always-on trace recording)
//   fast    allocation-free fast-path segment integrator, one device at a time
//   cohort  structure-of-arrays cohort kernel (the default): each chunk of
//           devices advances in lockstep, sharing segment tables, the
//           detection-gate window and policy objects across the cohort
// then sweeps the cohort kernel across every SIMD tier this build + host can
// run (off / array / sse2 / avx2) at one thread. Reports device-days/sec, the
// fast-vs-engine / cohort-vs-fast / simd-vs-scalar speedups, and per-mode
// thread scaling; cross-checks the determinism invariants in-run (aggregate
// FleetStats byte-identical at every thread count, across all three day
// simulators, and across every SIMD tier — each compared against the engine
// oracle's serialization). Results land in BENCH_fleet_throughput.json along
// with the host CPU model and ISA features that produced them.
//
// `--smoke` replaces the sweep with a seconds-scale cross-check (64 devices x
// 1 day through every path, tier and 2 threads), prints a digest of the
// canonical serialization for cross-build comparison (the digest depends only
// on the simulated results, never on chunking, threads or tier), and exits
// nonzero on any mismatch. scripts/check.sh runs it on every build, and
// compares digests between the SIMD and the -DIW_SIMD=OFF portable build.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/hostinfo.hpp"
#include "common/simd.hpp"
#include "fleet/fleet_engine.hpp"
#include "report.hpp"

namespace {

// FNV-1a over the canonical FleetStats serialization: two runs agree
// bit-for-bit iff their digests match (modulo collisions, which a follow-up
// byte compare of the serializations would catch — the bench itself always
// compares the full strings and uses the digest only for cross-build output).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<iw::simd::Tier> runnable_tiers() {
  std::vector<iw::simd::Tier> tiers = {iw::simd::Tier::kOff};
  for (iw::simd::Tier t : {iw::simd::Tier::kArray, iw::simd::Tier::kSse2,
                           iw::simd::Tier::kAvx2}) {
    if (iw::simd::tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 1000;
  int days = 1;
  std::size_t chunk = iw::fleet::FleetConfig{}.chunk_size;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--devices") == 0 && more) {
      devices = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--days") == 0 && more) {
      days = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--chunk") == 0 && more) {
      chunk = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--devices N] [--days N] [--chunk N] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (devices == 0 || days <= 0 || chunk == 0) {
    std::fprintf(stderr, "need --devices >= 1, --days >= 1 and --chunk >= 1\n");
    return 2;
  }

  iw::fleet::FleetConfig config;
  config.fleet_seed = 2020;
  config.chunk_size = chunk;
  const std::vector<iw::simd::Tier> tiers = runnable_tiers();

  if (smoke) {
    // Seconds-scale cross-build check: every day simulator, every SIMD tier
    // and a threaded run must serialize to the same bytes.
    config.num_devices = 64;
    config.days = 1;
    iw::bench::print_header("Fleet throughput smoke (64 devices x 1 day)");
    config.fast_day = false;
    config.cohort_day = false;
    config.threads = 1;
    const std::string reference =
        iw::fleet::FleetEngine(config).run().stats.serialize();
    bool ok = true;
    const auto check = [&](const std::string& label, const std::string& got) {
      const bool same = got == reference;
      std::printf("  %-28s %s\n", label.c_str(),
                  same ? "matches engine oracle" : "MISMATCH");
      ok = ok && same;
    };
    config.fast_day = true;
    check("fast t1", iw::fleet::FleetEngine(config).run().stats.serialize());
    config.cohort_day = true;
    for (iw::simd::Tier tier : tiers) {
      iw::simd::override_tier(tier);
      check(std::string("cohort t1 tier=") + iw::simd::tier_name(tier),
            iw::fleet::FleetEngine(config).run().stats.serialize());
    }
    iw::simd::clear_override();
    config.threads = 2;
    check("cohort t2", iw::fleet::FleetEngine(config).run().stats.serialize());
    std::printf("  smoke digest: %016llx\n",
                static_cast<unsigned long long>(fnv1a(reference)));
    iw::bench::print_note(ok ? "smoke cross-check passed"
                             : "SMOKE FAILURE: paths disagree");
    return ok ? 0 : 1;
  }

  iw::bench::print_header("Fleet throughput (" + std::to_string(devices) +
                          " devices x " + std::to_string(days) + " day" +
                          (days == 1 ? "" : "s") + ")");

  config.num_devices = devices;
  config.days = days;

  iw::bench::JsonReport json("BENCH_fleet_throughput.json");
  json.add("devices", static_cast<double>(config.num_devices));
  json.add("days", config.days);
  json.add("chunk_size", static_cast<double>(config.chunk_size));
  json.add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));
  json.add("cpu_model", iw::hostinfo::cpu_model());
  json.add("cpu_simd_features", iw::hostinfo::cpu_simd_features());
  json.add("simd_tier", iw::simd::tier_name(iw::simd::active_tier()));

  std::printf("%16s %8s %16s %10s %12s\n", "path", "threads", "dev-days/sec",
              "speedup", "efficiency");

  struct Mode {
    const char* name;
    bool fast_day;
    bool cohort_day;
  };
  // `fast` pins cohort_day off to isolate the per-device scalar baseline;
  // `cohort` is the shipping default (both flags on) at the default
  // (widest usable) SIMD tier.
  constexpr Mode kModes[] = {{"engine", false, false},
                             {"fast", true, false},
                             {"cohort", true, true}};

  bool deterministic = true;
  std::string reference;  // t1 engine-path serialization: the oracle
  double engine_t1_ddps = 0.0;
  double fast_t1_ddps = 0.0;
  double cohort_t1_ddps = 0.0;
  iw::fleet::FleetStats::Summary summary;
  for (const Mode& mode : kModes) {
    config.fast_day = mode.fast_day;
    config.cohort_day = mode.cohort_day;
    double base_ddps = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      config.threads = threads;
      const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
      const std::string serialized = result.stats.serialize();
      if (reference.empty()) {
        reference = serialized;
        summary = result.stats.summarize();
      } else if (serialized != reference) {
        deterministic = false;
      }
      if (threads == 1) {
        base_ddps = result.device_days_per_sec;
        if (mode.cohort_day) {
          cohort_t1_ddps = result.device_days_per_sec;
        } else if (mode.fast_day) {
          fast_t1_ddps = result.device_days_per_sec;
        } else {
          engine_t1_ddps = result.device_days_per_sec;
        }
      }
      const double speedup =
          base_ddps > 0.0 ? result.device_days_per_sec / base_ddps : 0.0;
      const double efficiency = speedup / threads;
      std::printf("%16s %8d %16.1f %9.2fx %11.1f%%\n", mode.name, threads,
                  result.device_days_per_sec, speedup, 100.0 * efficiency);

      const std::string prefix =
          std::string(mode.name) + "_t" + std::to_string(threads);
      json.add(prefix + "_device_days_per_sec", result.device_days_per_sec);
      json.add(prefix + "_wall_s", result.wall_s);
      json.add(prefix + "_speedup", speedup);
      json.add(prefix + "_efficiency", efficiency);
    }
  }

  // SIMD tier axis: the cohort kernel at one thread, once per tier this
  // build + host can run, each run's aggregate compared byte-for-byte
  // against the engine oracle captured above.
  config.fast_day = true;
  config.cohort_day = true;
  config.threads = 1;
  bool tiers_identical = true;
  double tier_off_ddps = 0.0;
  double tier_best_ddps = 0.0;
  for (iw::simd::Tier tier : tiers) {
    iw::simd::override_tier(tier);
    const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
    if (result.stats.serialize() != reference) tiers_identical = false;
    if (tier == iw::simd::Tier::kOff) tier_off_ddps = result.device_days_per_sec;
    tier_best_ddps = result.device_days_per_sec;  // tiers iterate narrow->wide
    const std::string label =
        std::string("cohort tier=") + iw::simd::tier_name(tier);
    const double speedup = tier_off_ddps > 0.0
                               ? result.device_days_per_sec / tier_off_ddps
                               : 0.0;
    std::printf("%16s %8d %16.1f %9.2fx %12s\n", label.c_str(), 1,
                result.device_days_per_sec, speedup, "");
    json.add("cohort_tier_" + std::string(iw::simd::tier_name(tier)) +
                 "_t1_device_days_per_sec",
             result.device_days_per_sec);
  }
  iw::simd::clear_override();

  const double fast_speedup =
      engine_t1_ddps > 0.0 ? fast_t1_ddps / engine_t1_ddps : 0.0;
  const double cohort_speedup =
      fast_t1_ddps > 0.0 ? cohort_t1_ddps / fast_t1_ddps : 0.0;
  const double simd_speedup =
      tier_off_ddps > 0.0 ? tier_best_ddps / tier_off_ddps : 0.0;
  std::printf("\n  fast path vs engine path (1 thread): %.2fx\n", fast_speedup);
  std::printf("  cohort kernel vs fast path (1 thread): %.2fx\n",
              cohort_speedup);
  std::printf("  cohort SIMD vs scalar kernel (1 thread): %.2fx\n",
              simd_speedup);
  json.add("fast_vs_engine_speedup_t1", fast_speedup);
  json.add("cohort_vs_fast_speedup_t1", cohort_speedup);
  json.add("cohort_simd_vs_scalar_speedup_t1", simd_speedup);
  json.add("deterministic_across_threads_and_paths", deterministic ? 1.0 : 0.0);
  json.add("identical_across_simd_tiers", tiers_identical ? 1.0 : 0.0);
  json.add("fleet_completed_detections",
           static_cast<double>(summary.detections_completed));
  json.add("fleet_fraction_self_sustaining", summary.fraction_self_sustaining);
  json.add("fleet_final_soc_p50", summary.final_soc.p50);
  json.add("peak_rss_bytes",
           static_cast<double>(iw::hostinfo::peak_rss_bytes()));

  iw::bench::print_note(
      deterministic
          ? "aggregate FleetStats byte-identical across thread counts and all "
            "three day simulators"
          : "DETERMINISM VIOLATION: stats differ across thread counts or paths");
  iw::bench::print_note(
      tiers_identical
          ? "cohort FleetStats byte-identical across SIMD tiers vs engine oracle"
          : "SIMD TIER VIOLATION: a tier's stats differ from the engine oracle");
  iw::bench::print_note("speedup is bounded by the host's available cores (" +
                        std::to_string(std::thread::hardware_concurrency()) +
                        " here)");
  json.write();
  return deterministic && tiers_identical ? 0 : 1;
}
