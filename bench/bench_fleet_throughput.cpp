// Fleet engine throughput: devices/sec and thread-scaling efficiency.
//
// Simulates a 1000-device fleet for one day at 1/2/4/8 worker threads,
// reports devices/sec, speedup and efficiency vs the single-thread run, and
// cross-checks the determinism invariant (the aggregate FleetStats must be
// byte-identical at every thread count). Results land in
// BENCH_fleet_throughput.json.
#include <cstdio>
#include <string>
#include <thread>

#include "fleet/fleet_engine.hpp"
#include "report.hpp"

int main() {
  iw::bench::print_header("Fleet throughput (1000 devices x 1 day)");

  iw::fleet::FleetConfig config;
  config.num_devices = 1000;
  config.fleet_seed = 2020;
  config.days = 1;
  config.chunk_size = 16;

  iw::bench::JsonReport json("BENCH_fleet_throughput.json");
  json.add("devices", static_cast<double>(config.num_devices));
  json.add("days", config.days);
  json.add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));

  std::printf("%8s %14s %10s %12s\n", "threads", "devices/sec", "speedup",
              "efficiency");

  double base_dps = 0.0;
  std::string reference;
  bool deterministic = true;
  iw::fleet::FleetStats::Summary summary;
  for (int threads : {1, 2, 4, 8}) {
    config.threads = threads;
    const iw::fleet::FleetResult result = iw::fleet::FleetEngine(config).run();
    const std::string serialized = result.stats.serialize();
    if (threads == 1) {
      base_dps = result.devices_per_sec;
      reference = serialized;
      summary = result.stats.summarize();
    } else if (serialized != reference) {
      deterministic = false;
    }
    const double speedup = base_dps > 0.0 ? result.devices_per_sec / base_dps : 0.0;
    const double efficiency = speedup / threads;
    std::printf("%8d %14.1f %9.2fx %11.1f%%\n", threads, result.devices_per_sec,
                speedup, 100.0 * efficiency);

    const std::string prefix = "t" + std::to_string(threads);
    json.add(prefix + "_devices_per_sec", result.devices_per_sec);
    json.add(prefix + "_wall_s", result.wall_s);
    json.add(prefix + "_speedup", speedup);
    json.add(prefix + "_efficiency", efficiency);
  }
  json.add("deterministic_across_threads", deterministic ? 1.0 : 0.0);
  json.add("fleet_completed_detections",
           static_cast<double>(summary.detections_completed));
  json.add("fleet_fraction_self_sustaining", summary.fraction_self_sustaining);
  json.add("fleet_final_soc_p50", summary.final_soc.p50);

  iw::bench::print_note(deterministic
                            ? "aggregate FleetStats byte-identical across thread counts"
                            : "DETERMINISM VIOLATION: stats differ across thread counts");
  iw::bench::print_note("speedup is bounded by the host's available cores (" +
                        std::to_string(std::thread::hardware_concurrency()) +
                        " here)");
  json.write();
  return deterministic ? 0 : 1;
}
