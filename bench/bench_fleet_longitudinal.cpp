// Longitudinal fleet runner throughput: device-days/sec when the per-shard
// setup (scenario sampling, profile build, policy pooling, shape/gate
// caches) amortizes over a month of simulated days instead of one.
//
// Sweeps worker threads at a fixed population (override with `--devices N
// --days N --shard N`), prints device-days/sec against the 1-day cohort
// baseline measured in the same process, and cross-checks the determinism
// contract in-bench: streamed aggregates byte-identical across thread
// counts, shard sizes, and a checkpoint/resume split through a real
// checkpoint file. Results land in BENCH_fleet_longitudinal.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "fleet/longitudinal/runner.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  std::uint64_t devices = 10000;
  int days = 30;
  std::size_t shard = 4096;
  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--devices") == 0 && more) {
      devices = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--days") == 0 && more) {
      days = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shard") == 0 && more) {
      shard = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--devices N] [--days N] [--shard N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (devices == 0 || days <= 0 || shard == 0) {
    std::fprintf(stderr, "need --devices >= 1, --days >= 1, --shard >= 1\n");
    return 2;
  }

  iw::bench::print_header(
      "Longitudinal fleet throughput (" + std::to_string(devices) +
      " devices x " + std::to_string(days) + " days, shard " +
      std::to_string(shard) + ")");

  iw::fleet::LongitudinalConfig config;
  config.num_devices = devices;
  config.fleet_seed = 2020;
  config.days = days;
  config.shard_size = shard;

  iw::bench::JsonReport json("BENCH_fleet_longitudinal.json");
  json.add("devices", static_cast<double>(devices));
  json.add("days", days);
  json.add("shard_size", static_cast<double>(shard));
  json.add("hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));

  // 1-day baseline in the same process: what the cohort engine achieves when
  // every day pays the full per-device setup (the committed
  // BENCH_fleet_throughput cohort_t1 number measures the same thing).
  iw::fleet::LongitudinalConfig one_day = config;
  one_day.days = 1;
  one_day.threads = 1;
  const double day1_ddps =
      iw::fleet::LongitudinalRunner(one_day).run().device_days_per_sec;
  std::printf("  1-day baseline (1 thread): %.0f device-days/sec\n\n", day1_ddps);
  json.add("day1_t1_device_days_per_sec", day1_ddps);

  std::printf("%8s %16s %10s %12s\n", "threads", "dev-days/sec", "speedup",
              "efficiency");
  std::string reference;
  double t1_ddps = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    config.threads = threads;
    const iw::fleet::LongitudinalResult result =
        iw::fleet::LongitudinalRunner(config).run();
    if (threads == 1) {
      t1_ddps = result.device_days_per_sec;
      reference = result.stats.serialize();
    }
    const double speedup =
        t1_ddps > 0.0 ? result.device_days_per_sec / t1_ddps : 0.0;
    std::printf("%8d %16.1f %9.2fx %11.1f%%\n", threads,
                result.device_days_per_sec, speedup,
                100.0 * speedup / threads);
    const std::string prefix = "long_t" + std::to_string(threads);
    json.add(prefix + "_device_days_per_sec", result.device_days_per_sec);
    json.add(prefix + "_wall_s", result.wall_s);
    json.add(prefix + "_speedup", speedup);
    if (threads > 1 && result.stats.serialize() != reference) {
      std::printf("  DETERMINISM VIOLATION at %d threads\n", threads);
      json.add("deterministic", 0.0);
      json.write();
      return 1;
    }
  }

  const double amortization = day1_ddps > 0.0 ? t1_ddps / day1_ddps : 0.0;
  std::printf("\n  multi-day vs 1-day (1 thread): %.2fx\n", amortization);
  json.add("multiday_vs_1day_t1", amortization);

  // Determinism beyond thread count: a different shard size (different work
  // decomposition and claim order) and a checkpoint/resume split through a
  // real file must reproduce the aggregate byte for byte.
  iw::fleet::LongitudinalConfig resharded = config;
  resharded.threads = 4;
  resharded.shard_size = shard / 3 + 1;
  const bool reshard_ok =
      iw::fleet::LongitudinalRunner(resharded).run().stats.serialize() ==
      reference;

  bool resume_ok = true;
  if (days >= 2) {
    const std::string ckpt = "bench_fleet_longitudinal.ckpt";
    iw::fleet::LongitudinalConfig leg1 = config;
    leg1.threads = 4;
    leg1.checkpoint_path = ckpt;
    leg1.checkpoint_day = days / 2;
    iw::fleet::LongitudinalRunner(leg1).run();
    iw::fleet::LongitudinalConfig leg2 = config;
    leg2.threads = 2;
    leg2.resume_path = ckpt;
    resume_ok =
        iw::fleet::LongitudinalRunner(leg2).run().stats.serialize() == reference;
    std::remove(ckpt.c_str());
  }

  const bool deterministic = reshard_ok && resume_ok;
  json.add("deterministic", deterministic ? 1.0 : 0.0);
  iw::bench::print_note(
      deterministic
          ? "aggregates byte-identical across thread counts, shard sizes, and "
            "a checkpoint/resume split"
          : "DETERMINISM VIOLATION across shard sizes or checkpoint/resume");
  json.write();
  return deterministic ? 0 : 1;
}
