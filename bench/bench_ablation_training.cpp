// Ablation: training methodology for the stress classifier.
// Compares FANN-style full-batch iRPROP- (the paper's trainer), iRPROP- with
// early stopping, and mini-batch SGD with momentum, on the same synthetic
// multi-subject dataset — plus a leave-one-subject-out generalization study.
#include <cstdio>

#include "../bench/report.hpp"
#include "bio/dataset.hpp"
#include "core/evaluation.hpp"
#include "nn/presets.hpp"
#include "nn/train.hpp"

int main() {
  iw::bio::StressDatasetConfig data_config;
  data_config.subjects = 4;
  data_config.minutes_per_level = 6.0;
  // Harder task: pull the stress levels' physiology closer together and
  // increase inter-subject variability, so methodology differences show.
  data_config.level_separation = 0.6;
  data_config.subject_variability = 0.15;
  const iw::bio::StressDataset ds = iw::bio::build_stress_dataset(data_config);

  iw::Rng rng(99);
  auto [train, test] = iw::nn::split(ds.data, 0.3, rng);
  auto [fit, validation] = iw::nn::split(train, 0.25, rng);

  iw::bench::print_header("Ablation - training methodology (Network A task)");
  std::printf("dataset: %zu windows (%zu train / %zu test)\n\n", ds.data.size(),
              train.size(), test.size());
  std::printf("%-28s %10s %12s %14s\n", "trainer", "epochs", "train MSE",
              "test accuracy");

  {
    iw::Rng net_rng(7);
    iw::nn::Network net = iw::nn::make_network_a(net_rng);
    iw::nn::TrainConfig config;
    config.max_epochs = 600;
    config.target_mse = 2e-3;
    const auto result = iw::nn::train_rprop(net, train, config);
    std::printf("%-28s %10zu %12.5f %13.1f%%\n", "iRPROP- (paper/FANN)",
                result.epochs, result.final_mse,
                100.0 * iw::nn::evaluate_accuracy(net, test));
  }
  {
    iw::Rng net_rng(7);
    iw::nn::Network net = iw::nn::make_network_a(net_rng);
    iw::nn::TrainConfig config;
    config.max_epochs = 600;
    config.target_mse = 0.0;
    const auto result =
        iw::nn::train_rprop_early_stopping(net, fit, validation, config, 30);
    std::printf("%-28s %10zu %12.5f %13.1f%%\n", "iRPROP- + early stopping",
                result.epochs, result.final_mse,
                100.0 * iw::nn::evaluate_accuracy(net, test));
  }
  {
    iw::Rng net_rng(7);
    iw::nn::Network net = iw::nn::make_network_a(net_rng);
    iw::nn::SgdConfig config;
    config.max_epochs = 600;
    config.batch_size = 16;
    config.learning_rate = 0.05;
    config.target_mse = 2e-3;
    const auto result = iw::nn::train_sgd(net, train, config);
    std::printf("%-28s %10zu %12.5f %13.1f%%\n", "SGD + momentum", result.epochs,
                result.final_mse, 100.0 * iw::nn::evaluate_accuracy(net, test));
  }

  // Subject-independent generalization.
  iw::nn::TrainConfig loso_config;
  loso_config.max_epochs = 300;
  loso_config.target_mse = 5e-3;
  const iw::core::LosoResult loso = iw::core::leave_one_subject_out(ds, loso_config);
  std::printf("\nleave-one-subject-out (no normalizer leakage):\n");
  for (const auto& fold : loso.folds) {
    std::printf("  held-out subject %d: %.1f%% over %zu windows\n",
                fold.held_out_subject, 100.0 * fold.accuracy, fold.test_windows);
  }
  std::printf("  mean %.1f%%, worst %.1f%% (3-class chance 33.3%%)\n",
              100.0 * loso.mean_accuracy, 100.0 * loso.worst_accuracy);
  return 0;
}
