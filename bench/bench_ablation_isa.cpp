// Ablation: which Xpulp ISA features buy the RI5CY speedup of Table III?
// Runs the same Network A inference on RI5CY *timing* while generating code
// for progressively weaker ISAs:
//   generic RV32IM kernel  (no extensions used)
//   + post-increment addressing (M4-style kernel)
//   + hardware loops + p.clip   (full RI5CY kernel)
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "nn/quantize16.hpp"

int main() {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  std::vector<float> input(5);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto fixed_input = qn.quantize_input(input);

  // All variants run on a profile with RI5CY timing but every extension
  // enabled, so only the generated code differs.
  iw::rv::TimingProfile profile = iw::rv::ri5cy();

  const auto generic = iw::kernels::run_fixed_mlp_custom(
      qn, fixed_input, iw::kernels::Flavor::kGeneric, profile);
  const auto postinc = iw::kernels::run_fixed_mlp_custom(
      qn, fixed_input, iw::kernels::Flavor::kM4, profile);
  const auto full = iw::kernels::run_fixed_mlp_custom(
      qn, fixed_input, iw::kernels::Flavor::kRi5cy, profile);

  iw::bench::print_header("Ablation - Xpulp ISA feature contribution (Network A, RI5CY timing)");
  std::printf("%-46s %12s %10s\n", "kernel ISA level", "cycles", "speedup");
  const double base = static_cast<double>(generic.cycles);
  std::printf("%-46s %12llu %9.2fx\n", "RV32IM baseline (indexed, sw loops)",
              static_cast<unsigned long long>(generic.cycles), 1.0);
  std::printf("%-46s %12llu %9.2fx\n", "+ post-increment load/store",
              static_cast<unsigned long long>(postinc.cycles),
              base / static_cast<double>(postinc.cycles));
  std::printf("%-46s %12llu %9.2fx\n", "+ hardware loops + p.clip (full Xpulp)",
              static_cast<unsigned long long>(full.cycles),
              base / static_cast<double>(full.cycles));

  // Packed 16-bit SIMD (pv.sdotsp.h): two MACs per cycle, half the loads.
  const iw::nn::QuantizedNetwork16 qn16 = iw::nn::QuantizedNetwork16::from(net);
  const auto simd = iw::kernels::run_simd_mlp(qn16, qn16.quantize_input(input));
  std::printf("%-46s %12llu %9.2fx  (16-bit Q%d)\n",
              "+ packed 16-bit SIMD (pv.sdotsp.h)",
              static_cast<unsigned long long>(simd.cycles),
              base / static_cast<double>(simd.cycles), qn16.frac_bits());

  // Sanity: all variants compute the same outputs.
  const bool agree =
      generic.outputs_fixed == postinc.outputs_fixed &&
      postinc.outputs_fixed == full.outputs_fixed;
  std::printf("  outputs bit-identical across variants: %s\n", agree ? "yes" : "NO");
  iw::bench::print_note("Paper context: the extensions give RI5CY its 1.3x edge over");
  iw::bench::print_note("the Cortex-M4 at equal MACs (Table III).");
  return agree ? 0 : 1;
}
