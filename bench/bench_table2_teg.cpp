// Reproduces Table II: TEG power harvested from the human wrist with and
// without active cooling. Rows 1 and 3 calibrate the thermal network; row 2
// is a genuine model prediction via the quadratic dT law.
#include <cstdio>

#include "../bench/report.hpp"
#include "common/units.hpp"
#include "harvest/teg.hpp"

int main() {
  using iw::units::to_uw;
  const iw::hv::TegHarvester teg = iw::hv::TegHarvester::calibrated();
  const double wind = 42.0 / 3.6;  // 42 km/h in m/s

  iw::bench::print_header("Table II - Human wrist TEG power harvesting");
  iw::bench::print_row_header("condition [net intake, uW]");
  iw::bench::print_row("Room 22C, skin 32C, no wind", 24.0,
                       to_uw(teg.net_intake_w(32.0, 22.0, 0.0)), "%14.1f");
  iw::bench::print_row("Room 15C, skin 30C, no wind (prediction)", 55.5,
                       to_uw(teg.net_intake_w(30.0, 15.0, 0.0)), "%14.1f");
  iw::bench::print_row("Room 15C, skin 30C, 42 km/h wind", 155.4,
                       to_uw(teg.net_intake_w(30.0, 15.0, wind)), "%14.1f");

  std::printf("\n  Gradient sweep (skin 32C, no wind):\n");
  std::printf("  %12s %12s %14s\n", "ambient C", "dT_teg K", "intake uW");
  for (double ambient : {28.0, 25.0, 22.0, 18.0, 15.0, 10.0}) {
    std::printf("  %12.0f %12.3f %14.1f\n", ambient,
                teg.delta_t_teg_k(32.0, ambient, 0.0),
                to_uw(teg.net_intake_w(32.0, ambient, 0.0)));
  }
  std::printf("\n  Wind sweep (skin 30C, room 15C):\n");
  std::printf("  %12s %12s %14s\n", "wind km/h", "h W/m2K", "intake uW");
  for (double kmh : {0.0, 5.0, 10.0, 20.0, 42.0, 80.0}) {
    std::printf("  %12.0f %12.1f %14.1f\n", kmh, teg.h_w_per_m2k(kmh / 3.6),
                to_uw(teg.net_intake_w(30.0, 15.0, kmh / 3.6)));
  }
  std::printf("  Calibrated: Seebeck %.1f mV/K, wind coefficient %.3f\n",
              1000.0 * teg.params().seebeck_v_per_k, teg.params().wind_coeff);
  return 0;
}
