// Ablation: fixed-point format sweep. FANN-style export picks one Q format
// for the whole network; this bench sweeps the fraction-bit cap and reports
// classification agreement with the float network and worst-case output
// error, showing why Q13 is a safe default for Network A-sized models.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

int main() {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);

  // Probe inputs across the feature cube.
  std::vector<std::vector<float>> probes;
  iw::Rng probe_rng(7);
  for (int i = 0; i < 300; ++i) {
    std::vector<float> input(5);
    for (float& v : input) v = static_cast<float>(probe_rng.uniform(-1.0, 1.0));
    probes.push_back(std::move(input));
  }

  iw::bench::print_header("Ablation - fixed-point format sweep (Network A)");
  std::printf("%10s %12s %16s %18s\n", "Q format", "agreement", "max |err|",
              "mean |err|");
  for (int cap : {6, 8, 10, 12, 13}) {
    const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net, cap);
    int agree = 0;
    double max_err = 0.0, sum_err = 0.0;
    std::size_t count = 0;
    for (const auto& input : probes) {
      const auto fref = net.infer(input);
      const auto fxd = qn.infer(input);
      const std::size_t a = static_cast<std::size_t>(
          std::max_element(fref.begin(), fref.end()) - fref.begin());
      const std::size_t b = static_cast<std::size_t>(
          std::max_element(fxd.begin(), fxd.end()) - fxd.begin());
      agree += a == b ? 1 : 0;
      for (std::size_t i = 0; i < fref.size(); ++i) {
        const double err = std::abs(static_cast<double>(fref[i]) - fxd[i]);
        max_err = std::max(max_err, err);
        sum_err += err;
        ++count;
      }
    }
    std::printf("%9sQ%-2d %11.1f%% %16.5f %18.6f\n", "",
                qn.format().frac_bits,
                100.0 * agree / static_cast<double>(probes.size()), max_err,
                sum_err / static_cast<double>(count));
  }
  iw::bench::print_note("The paper deploys FANN's fixed export (Q12/Q13 for these");
  iw::bench::print_note("weight ranges); below ~Q8 the argmax starts to flip.");
  return 0;
}
