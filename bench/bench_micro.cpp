// Host-side micro-benchmarks (google-benchmark): throughput of the
// simulation stack itself — ISS instruction rate, assembler speed, host MLP
// inference, and the biosignal feature pipeline. These bound how large an
// experiment the reproduction can run in reasonable wall-clock time.
#include <benchmark/benchmark.h>

#include "asmx/assembler.hpp"
#include "bio/dataset.hpp"
#include "bio/features.hpp"
#include "bio/rpeak.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "rvsim/machine.hpp"

namespace {

void BM_IssInstructionRate(benchmark::State& state) {
  // Tight arithmetic loop; reports simulated instructions per second.
  const iw::asmx::Program program = iw::asmx::assemble(R"(
      li t0, 100000
  loop:
      addi t1, t1, 3
      xor t2, t1, t0
      add t3, t2, t1
      addi t0, t0, -1
      bnez t0, loop
      ecall
  )");
  for (auto _ : state) {
    iw::rv::Machine machine(iw::rv::ri5cy(), 1 << 16);
    machine.load_program(program.words);
    const iw::rv::RunResult run = machine.run(0);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(run.instructions));
  }
}
BENCHMARK(BM_IssInstructionRate)->Unit(benchmark::kMillisecond);

void BM_AssemblerThroughput(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 1000; ++i) source += "  addi a0, a0, 1\n  xor a1, a0, a2\n";
  source += "  ecall\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(iw::asmx::assemble(source));
    state.SetItemsProcessed(state.items_processed() + 2001);
  }
}
BENCHMARK(BM_AssemblerThroughput)->Unit(benchmark::kMillisecond);

void BM_HostFloatInferenceNetA(benchmark::State& state) {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const std::vector<float> input{0.1f, -0.2f, 0.3f, -0.4f, 0.5f};
  for (auto _ : state) benchmark::DoNotOptimize(net.infer(input));
}
BENCHMARK(BM_HostFloatInferenceNetA);

void BM_HostFixedInferenceNetA(benchmark::State& state) {
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(std::vector<float>{0.1f, -0.2f, 0.3f, -0.4f, 0.5f});
  for (auto _ : state) benchmark::DoNotOptimize(qn.infer_fixed(input));
}
BENCHMARK(BM_HostFixedInferenceNetA);

void BM_IssNetAInference(benchmark::State& state) {
  // Full kernel run on the simulated 8-core cluster per iteration.
  iw::Rng rng(1);
  const iw::nn::Network net = iw::nn::make_network_a(rng);
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  const auto input = qn.quantize_input(std::vector<float>{0.1f, -0.2f, 0.3f, -0.4f, 0.5f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        iw::kernels::run_fixed_mlp(qn, input, iw::kernels::Target::kRi5cyMulti));
  }
}
BENCHMARK(BM_IssNetAInference)->Unit(benchmark::kMillisecond);

void BM_RPeakDetection(benchmark::State& state) {
  iw::Rng rng(1);
  const auto rr = iw::bio::generate_rr_intervals(
      iw::bio::rr_params_for(iw::bio::StressLevel::kMedium), 60.0, rng);
  const iw::bio::EcgSignal signal = iw::bio::synthesize_ecg(rr, {}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(iw::bio::detect_r_peaks(signal));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(signal.samples.size()));
}
BENCHMARK(BM_RPeakDetection)->Unit(benchmark::kMillisecond);

void BM_FeatureWindowExtraction(benchmark::State& state) {
  iw::Rng rng(2);
  const auto rr = iw::bio::generate_rr_intervals(
      iw::bio::rr_params_for(iw::bio::StressLevel::kNone), 300.0, rng);
  const iw::bio::EcgSignal ecg = iw::bio::synthesize_ecg(rr, {}, rng);
  const iw::bio::GsrSignal gsr = iw::bio::synthesize_gsr(
      iw::bio::gsr_params_for(iw::bio::StressLevel::kNone), 300.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(iw::bio::extract_windows(ecg, gsr, {}));
  }
}
BENCHMARK(BM_FeatureWindowExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
