// Reproduces the Mr. Wolf operating-point claim (Section IV, citing the
// Mr. Wolf ESSCIRC paper): the SoC runs up to 450 MHz but is most
// energy-efficient at 100 MHz — which is why the paper evaluates there.
// Sweeps frequency and reports power, energy/cycle, and the energy and
// latency of one Network A classification (6126 cycles on 8 cores).
#include <cstdio>

#include "../bench/report.hpp"
#include "platform/detection_cost.hpp"
#include "power/dvfs.hpp"

int main() {
  const iw::pwr::MrWolfDvfsModel model = iw::pwr::MrWolfDvfsModel::calibrated_cluster();

  iw::bench::print_header("Mr. Wolf DVFS sweep (cluster, 8 cores)");
  std::printf("%10s %8s %10s %14s %14s %12s\n", "f [MHz]", "V", "P [mW]",
              "pJ/cycle", "NetA uJ", "NetA us");
  constexpr double kNetACycles =
      static_cast<double>(iw::platform::kPaperClassificationCyclesMulti8);
  for (double mhz : {25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 450.0}) {
    const double f = mhz * 1e6;
    const double e_cycle = model.energy_per_cycle_j(f);
    std::printf("%10.0f %8.2f %10.2f %14.2f %14.2f %12.1f\n", mhz,
                model.voltage_v(f), model.power_w(f) * 1e3, e_cycle * 1e12,
                e_cycle * kNetACycles * 1e6, kNetACycles / f * 1e6);
  }
  const double f_opt = model.most_efficient_frequency_hz();
  std::printf("\n  most efficient frequency: %.0f MHz (paper: 100 MHz)\n",
              f_opt / 1e6);
  iw::bench::print_note("below the knee, leakage amortization favors higher f; above");
  iw::bench::print_note("it, the V^2 dynamic-energy penalty dominates.");
  return 0;
}
