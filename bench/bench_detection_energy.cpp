// Reproduces the Section IV per-detection energy decomposition:
// acquisition 3 s of ECG (171 uW) + GSR (30 uW) ~ 600 uJ, feature extraction
// 50 us @ 20 mW ~ 1 uJ, classification 1.2 uJ (8x RI5CY) -> best total
// 602.2 uJ per stress detection.
#include <cstdio>

#include "../bench/report.hpp"
#include "core/comparison.hpp"
#include "platform/detection_cost.hpp"

int main() {
  using iw::platform::DetectionCostParams;
  using iw::platform::make_detection_cost;

  const iw::platform::DetectionCost best = make_detection_cost(DetectionCostParams{});

  iw::bench::print_header("Section IV - energy per stress detection [uJ]");
  iw::bench::print_row_header("phase");
  iw::bench::print_row("acquisition (ECG+GSR, 3 s)", 600.0, best.acquisition_j * 1e6,
                       "%14.1f");
  iw::bench::print_row("feature extraction (50 us @ 20 mW)", 1.0,
                       best.feature_extraction_j * 1e6, "%14.1f");
  iw::bench::print_row("classification (8x RI5CY)", 1.2, best.classification_j * 1e6,
                       "%14.1f");
  iw::bench::print_row("total per detection", 602.2, best.total_j() * 1e6, "%14.1f");

  std::printf("\n  Classification target alternatives:\n");
  std::printf("  %-34s %12s %12s\n", "target", "cycles", "uJ");
  struct Alt {
    const char* name;
    std::uint64_t cycles;
    iw::pwr::ProcessorPowerModel power;
  };
  const Alt alts[] = {
      {"ARM Cortex-M4", 30210, iw::pwr::nordic_m4()},
      {"Mr. Wolf IBEX", 40661, iw::pwr::mr_wolf_ibex()},
      {"Mr. Wolf 1x RI5CY", 22772, iw::pwr::mr_wolf_cluster_single()},
      {"Mr. Wolf 8x RI5CY", iw::platform::kPaperClassificationCyclesMulti8,
       iw::pwr::mr_wolf_cluster_multi8()},
  };
  for (const Alt& alt : alts) {
    DetectionCostParams params;
    params.classification_cycles = alt.cycles;
    params.classification_processor = alt.power;
    const auto cost = make_detection_cost(params);
    std::printf("  %-34s %12llu %12.1f\n", alt.name,
                static_cast<unsigned long long>(alt.cycles), cost.total_j() * 1e6);
  }
  iw::bench::print_note("Acquisition dominates: the classifier choice shifts the total");
  iw::bench::print_note("by < 1%, but determines latency and peak power.");
  return 0;
}
