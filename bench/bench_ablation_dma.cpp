// Ablation: DMA double-buffering. Network B's weights (353 kB) exceed the
// real Mr. Wolf TCDM (64 kB); deployments stream weight tiles from L2 with
// the cluster DMA. This bench measures a tile-streaming workload (sum over
// 16k words) with blocking transfers vs double buffering, across tile sizes.
#include <cstdio>
#include <string>

#include "../bench/report.hpp"
#include "asmx/assembler.hpp"
#include "rvsim/cluster.hpp"

namespace {

const char* kDmaEqus = R"(
    .equ DMA_SRC, 0xFFD0
    .equ DMA_DST, 0xFFD4
    .equ DMA_LEN, 0xFFD8
    .equ DMA_TRIG, 0xFFDC
    .equ DMA_WAIT, 0xFFE0
    .equ L2, 0x4000
    .equ TILE0, 0x80000
    .equ TILE1, 0x88000
)";

std::string blocking_program(int tiles, int tile_words) {
  return std::string(kDmaEqus) +
         "    .equ TILES, " + std::to_string(tiles) + "\n" +
         "    .equ TWORDS, " + std::to_string(tile_words) + "\n" + R"(
    li s0, 0
    li s1, TILES
    li a0, 0
tile_loop:
    li t0, DMA_SRC
    li t1, TWORDS*4
    mul t1, t1, s0
    li t2, L2
    add t2, t2, t1
    sw t2, 0(t0)
    li t2, TILE0
    sw t2, 4(t0)
    li t2, TWORDS
    sw t2, 8(t0)
    sw zero, 12(t0)
    sw zero, 16(t0)
    li t3, TILE0
    li t4, TWORDS
    lp.setup 0, t4, sum_end
    p.lw t5, 4(t3!)
    add a0, a0, t5
sum_end:
    addi s0, s0, 1
    bne s0, s1, tile_loop
    ecall
)";
}

std::string overlapped_program(int tiles, int tile_words) {
  return std::string(kDmaEqus) +
         "    .equ TILES, " + std::to_string(tiles) + "\n" +
         "    .equ TWORDS, " + std::to_string(tile_words) + "\n" + R"(
    li t0, DMA_SRC
    li t2, L2
    sw t2, 0(t0)
    li t2, TILE0
    sw t2, 4(t0)
    li t2, TWORDS
    sw t2, 8(t0)
    sw zero, 12(t0)
    li s0, 0
    li s1, TILES
    li a0, 0
    li s2, TILE0
    li s3, TILE1
tile_loop:
    sw zero, 16(t0)
    addi t1, s0, 1
    beq t1, s1, no_prefetch
    li t2, TWORDS*4
    mul t1, t1, t2
    li t2, L2
    add t2, t2, t1
    sw t2, 0(t0)
    sw s3, 4(t0)
    li t2, TWORDS
    sw t2, 8(t0)
    sw zero, 12(t0)
no_prefetch:
    mv t3, s2
    li t4, TWORDS
    lp.setup 0, t4, sum_end
    p.lw t5, 4(t3!)
    add a0, a0, t5
sum_end:
    mv t4, s2
    mv s2, s3
    mv s3, t4
    addi s0, s0, 1
    bne s0, s1, tile_loop
    ecall
)";
}

iw::rv::ClusterRunResult run(const std::string& source, int total_words) {
  iw::rv::ClusterConfig cfg;
  cfg.num_cores = 1;
  cfg.mem_bytes = 1u << 20;
  iw::rv::Cluster cluster(iw::rv::ri5cy(), cfg);
  cluster.load_program(iw::asmx::assemble(source).words);
  for (int i = 0; i < total_words; ++i) {
    cluster.memory().store32(0x4000 + 4 * static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(i));
  }
  return cluster.run(0);
}

}  // namespace

int main() {
  iw::bench::print_header("Ablation - DMA weight streaming (L2 -> TCDM)");
  constexpr int kTotalWords = 16384;
  std::printf("workload: checksum over %d words streamed in tiles\n\n", kTotalWords);
  std::printf("%12s %14s %14s %10s %16s\n", "tile words", "blocking cyc",
              "overlap cyc", "speedup", "DMA wait (ovl)");
  for (int tile : {256, 512, 1024, 2048}) {
    const int tiles = kTotalWords / tile;
    const auto rb = run(blocking_program(tiles, tile), kTotalWords);
    const auto ro = run(overlapped_program(tiles, tile), kTotalWords);
    std::printf("%12d %14llu %14llu %9.2fx %16llu\n", tile,
                static_cast<unsigned long long>(rb.cycles),
                static_cast<unsigned long long>(ro.cycles),
                static_cast<double>(rb.cycles) / static_cast<double>(ro.cycles),
                static_cast<unsigned long long>(ro.dma_wait_cycles));
  }
  iw::bench::print_note("");
  iw::bench::print_note("double buffering hides the transfer latency behind compute;");
  iw::bench::print_note("this is how Network B's 353 kB of weights would stream through");
  iw::bench::print_note("Mr. Wolf's 64 kB TCDM in a real deployment.");
  return 0;
}
