// Reproduces Table I: solar power generation under different lighting
// conditions (0.9 mW @ 700 lx indoor, 24.711 mW @ 30 klx outdoor), plus an
// illuminance sweep showing the calibrated chain's behaviour between and
// beyond the paper's two operating points.
#include <cstdio>

#include "../bench/report.hpp"
#include "common/units.hpp"
#include "harvest/solar.hpp"

int main() {
  using iw::units::to_mw;
  const iw::hv::SolarHarvester solar = iw::hv::SolarHarvester::calibrated();

  iw::bench::print_header("Table I - Solar power generation");
  iw::bench::print_row_header("condition [net intake, mW]");
  iw::bench::print_row("Indoor, 700 lx", 0.9, to_mw(solar.net_intake_w(700.0)), "%14.3f");
  iw::bench::print_row("Outdoor (sun), 30 klx", 24.711,
                       to_mw(solar.net_intake_w(30000.0)), "%14.3f");

  std::printf("\n  Illuminance sweep (model interpolation/extrapolation):\n");
  std::printf("  %10s %14s %14s\n", "lux", "panel mW", "intake mW");
  for (double lux : {50.0, 200.0, 700.0, 2000.0, 5000.0, 10000.0, 30000.0, 60000.0}) {
    std::printf("  %10.0f %14.3f %14.3f\n", lux, to_mw(solar.panel_power_w(lux)),
                to_mw(solar.net_intake_w(lux)));
  }
  std::printf("  Calibrated panel: reference efficiency %.2f%% @ 700 lx, "
              "saturation exponent %.3f\n",
              100.0 * solar.panel().reference_efficiency,
              solar.panel().saturation_exponent);
  return 0;
}
