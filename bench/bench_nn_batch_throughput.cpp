// Batched vs per-sample NN inference throughput.
//
// Measures inferences/sec for the per-sample reference paths (Network::infer,
// QuantizedNetwork::infer_fixed, QuantizedNetwork16::infer_fixed) against the
// batch engines (FloatBatch / FixedBatch / Fixed16Batch) on the paper's
// Network A and Network B, at batch sizes 1/8/64/512. The batch engines are
// bit-exact with the per-sample paths, so the speedup is pure engineering:
// no per-call allocation, weight rows streamed once per tile instead of once
// per sample, contiguous inner loops over samples. Also reports the
// fleet-level win: devices/sec with batched classification on vs off, and the
// SIMD tier axis for the 16-bit path (Fixed16Batch re-measured at every
// runnable tier with a byte-identity check against the per-sample oracle —
// the process exits non-zero if any tier's outputs differ).
// Results land in BENCH_nn_batch_throughput.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/hostinfo.hpp"
#include "common/simd.hpp"
#include "core/app.hpp"
#include "fleet/fleet_engine.hpp"
#include "nn/batch.hpp"
#include "nn/presets.hpp"
#include "report.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Minimum wall time per timed window; long enough to dominate timer noise,
/// short enough that the full grid (2 nets x 3 paths x 4 batch sizes x 2
/// modes) stays around a minute.
constexpr double kMinSeconds = 0.15;
/// Timed windows per measurement; the best window is reported, which filters
/// scheduler noise on loaded (1-core CI) hosts.
constexpr int kRepeats = 3;

constexpr std::size_t kMaxBatch = 512;
const std::vector<std::size_t> kBatchSizes = {1, 8, 64, 512};

/// Runs `body` (one call = `per_call` inferences) in kRepeats timed windows of
/// at least kMinSeconds each and returns the best window's inferences/sec.
template <typename Body>
double measure_ips(std::size_t per_call, Body&& body) {
  // Warm-up call (first call may fault in pages / build lazy state).
  body();
  double best = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    std::size_t calls = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    do {
      body();
      ++calls;
      elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (elapsed < kMinSeconds);
    best = std::max(best, static_cast<double>(calls * per_call) / elapsed);
  }
  return best;
}

struct NetInputs {
  std::vector<std::vector<float>> rows;
  std::vector<const float*> row_ptrs;
  std::vector<float> packed_f;
  std::vector<std::int32_t> packed_q32;
  std::vector<std::int16_t> packed_q16;
};

NetInputs make_inputs(const iw::nn::Network& net,
                      const iw::nn::QuantizedNetwork& qn,
                      const iw::nn::QuantizedNetwork16& q16, iw::Rng& rng) {
  NetInputs in;
  const std::size_t width = net.num_inputs();
  in.rows.resize(kMaxBatch);
  in.packed_f.resize(kMaxBatch * width);
  in.packed_q32.resize(kMaxBatch * width);
  in.packed_q16.resize(kMaxBatch * width);
  for (std::size_t s = 0; s < kMaxBatch; ++s) {
    auto& row = in.rows[s];
    row.resize(width);
    for (float& v : row) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    in.row_ptrs.push_back(row.data());
    std::copy(row.begin(), row.end(), in.packed_f.begin() + s * width);
    const auto q = qn.quantize_input(row);
    std::copy(q.begin(), q.end(), in.packed_q32.begin() + s * width);
    const auto h = q16.quantize_input(row);
    std::copy(h.begin(), h.end(), in.packed_q16.begin() + s * width);
  }
  return in;
}

/// Keeps the optimizer honest: every measured loop folds its outputs in here.
volatile double g_sink = 0.0;

std::vector<iw::simd::Tier> runnable_tiers() {
  std::vector<iw::simd::Tier> tiers = {iw::simd::Tier::kOff};
  for (iw::simd::Tier t : {iw::simd::Tier::kArray, iw::simd::Tier::kSse2,
                           iw::simd::Tier::kAvx2}) {
    if (iw::simd::tier_usable(t)) tiers.push_back(t);
  }
  return tiers;
}

/// Returns false when any SIMD tier's Fixed16Batch outputs differ from the
/// per-sample oracle (they never should: the tiers are bit-exact).
bool bench_network(const char* tag, const iw::nn::Network& net,
                   iw::bench::JsonReport& json) {
  const iw::nn::QuantizedNetwork qn = iw::nn::QuantizedNetwork::from(net);
  const iw::nn::QuantizedNetwork16 q16 = iw::nn::QuantizedNetwork16::from(net);
  iw::Rng rng(0xbe5c0000u + static_cast<unsigned>(tag[0]));
  const NetInputs in = make_inputs(net, qn, q16, rng);
  const std::size_t width = net.num_inputs();
  const std::size_t n_out = net.num_outputs();

  iw::nn::FloatBatch fb(net);
  iw::nn::FixedBatch xb(qn);
  iw::nn::Fixed16Batch hb(q16);
  std::vector<float> out_f(kMaxBatch * n_out);
  std::vector<std::int32_t> out_q32(kMaxBatch * n_out);
  std::vector<std::int16_t> out_q16(kMaxBatch * n_out);

  // Per-sample reference rates (batch size is irrelevant: one call per row).
  const double ps_float = measure_ips(kMaxBatch, [&] {
    double acc = 0.0;
    for (std::size_t s = 0; s < kMaxBatch; ++s) acc += net.infer(in.rows[s])[0];
    g_sink = acc;
  });
  const double ps_q32 = measure_ips(kMaxBatch, [&] {
    std::int64_t acc = 0;
    for (std::size_t s = 0; s < kMaxBatch; ++s) {
      acc += qn.infer_fixed(std::span<const std::int32_t>(
          in.packed_q32.data() + s * width, width))[0];
    }
    g_sink = static_cast<double>(acc);
  });
  const double ps_q16 = measure_ips(kMaxBatch, [&] {
    std::int64_t acc = 0;
    for (std::size_t s = 0; s < kMaxBatch; ++s) {
      acc += q16.infer_fixed(std::span<const std::int16_t>(
          in.packed_q16.data() + s * width, width))[0];
    }
    g_sink = static_cast<double>(acc);
  });

  std::printf("\n%s: per-sample baseline (inferences/sec)\n", tag);
  std::printf("  float %12.0f   q32 %12.0f   q16 %12.0f\n", ps_float, ps_q32,
              ps_q16);
  json.add(std::string(tag) + "_persample_float_ips", ps_float);
  json.add(std::string(tag) + "_persample_q32_ips", ps_q32);
  json.add(std::string(tag) + "_persample_q16_ips", ps_q16);

  std::printf("  %5s %12s %7s %12s %7s %12s %7s\n", "batch", "float_ips", "x",
              "q32_ips", "x", "q16_ips", "x");
  for (const std::size_t b : kBatchSizes) {
    const double bf = measure_ips(b, [&] {
      fb.infer(std::span<const float>(in.packed_f.data(), b * width),
               std::span<float>(out_f.data(), b * n_out));
      g_sink = out_f[0];
    });
    const double bq32 = measure_ips(b, [&] {
      xb.infer_fixed(std::span<const std::int32_t>(in.packed_q32.data(), b * width),
                     std::span<std::int32_t>(out_q32.data(), b * n_out));
      g_sink = static_cast<double>(out_q32[0]);
    });
    const double bq16 = measure_ips(b, [&] {
      hb.infer_fixed(std::span<const std::int16_t>(in.packed_q16.data(), b * width),
                     std::span<std::int16_t>(out_q16.data(), b * n_out));
      g_sink = static_cast<double>(out_q16[0]);
    });
    std::printf("  %5zu %12.0f %6.2fx %12.0f %6.2fx %12.0f %6.2fx\n", b, bf,
                bf / ps_float, bq32, bq32 / ps_q32, bq16, bq16 / ps_q16);
    const std::string prefix = std::string(tag) + "_b" + std::to_string(b);
    json.add(prefix + "_float_ips", bf);
    json.add(prefix + "_float_speedup", bf / ps_float);
    json.add(prefix + "_q32_ips", bq32);
    json.add(prefix + "_q32_speedup", bq32 / ps_q32);
    json.add(prefix + "_q16_ips", bq16);
    json.add(prefix + "_q16_speedup", bq16 / ps_q16);
  }

  // SIMD tier axis for the 16-bit path: re-measure the full-tile batch at
  // every runnable tier in this one process (override_tier is the test hook
  // the cohort kernel uses for the same purpose), byte-comparing each tier's
  // outputs against the per-sample oracle computed above the batch engines.
  std::vector<std::int16_t> ref(kMaxBatch * n_out);
  for (std::size_t s = 0; s < kMaxBatch; ++s) {
    const auto out = q16.infer_fixed(std::span<const std::int16_t>(
        in.packed_q16.data() + s * width, width));
    std::copy(out.begin(), out.end(), ref.begin() + s * n_out);
  }
  std::printf("  q16 SIMD tier axis (batch %zu)\n", kMaxBatch);
  bool tiers_ok = true;
  double ips_off = 0.0;
  double ips_active = 0.0;
  for (const iw::simd::Tier tier : runnable_tiers()) {
    iw::simd::override_tier(tier);
    const double ips = measure_ips(kMaxBatch, [&] {
      hb.infer_fixed(
          std::span<const std::int16_t>(in.packed_q16.data(), kMaxBatch * width),
          std::span<std::int16_t>(out_q16.data(), kMaxBatch * n_out));
      g_sink = static_cast<double>(out_q16[0]);
    });
    const bool same = std::equal(out_q16.begin(), out_q16.end(), ref.begin());
    tiers_ok = tiers_ok && same;
    if (tier == iw::simd::Tier::kOff) ips_off = ips;
    if (tier == iw::simd::active_tier()) ips_active = ips;
    std::printf("  %5s %12.0f %6.2fx vs off   %s\n", iw::simd::tier_name(tier),
                ips, ips_off > 0.0 ? ips / ips_off : 0.0,
                same ? "matches per-sample oracle" : "MISMATCH");
    json.add(std::string(tag) + "_q16_tier_" + iw::simd::tier_name(tier) +
                 "_ips",
             ips);
  }
  iw::simd::clear_override();
  json.add(std::string(tag) + "_q16_simd_vs_scalar_speedup",
           ips_off > 0.0 ? ips_active / ips_off : 0.0);
  json.add(std::string(tag) + "_q16_identical_across_simd_tiers",
           tiers_ok ? 1.0 : 0.0);
  return tiers_ok;
}

void bench_fleet_delta(iw::bench::JsonReport& json) {
  // Small shared app (same shape as the fleet test suite's), 200 devices.
  iw::core::AppConfig app_config;
  app_config.dataset.subjects = 2;
  app_config.dataset.minutes_per_level = 2.0;
  app_config.training.max_epochs = 40;
  const iw::core::StressDetectionApp app =
      iw::core::StressDetectionApp::build(app_config);

  iw::fleet::FleetConfig config;
  config.num_devices = 200;
  config.fleet_seed = 2020;
  config.days = 1;
  config.threads = 1;
  config.app = &app;

  config.batched_classification = true;
  const iw::fleet::FleetResult batched = iw::fleet::FleetEngine(config).run();
  config.batched_classification = false;
  const iw::fleet::FleetResult per_sample = iw::fleet::FleetEngine(config).run();

  const bool identical =
      batched.stats.serialize() == per_sample.stats.serialize();
  const double delta = per_sample.devices_per_sec > 0.0
                           ? batched.devices_per_sec / per_sample.devices_per_sec
                           : 0.0;
  std::printf("\nfleet (200 devices x 1 day, shared app, 1 thread)\n");
  std::printf("  batched %10.1f devices/sec   per-sample %10.1f devices/sec"
              "   delta %5.2fx   results identical: %s\n",
              batched.devices_per_sec, per_sample.devices_per_sec, delta,
              identical ? "yes" : "NO");
  json.add("fleet_batched_devices_per_sec", batched.devices_per_sec);
  json.add("fleet_persample_devices_per_sec", per_sample.devices_per_sec);
  json.add("fleet_throughput_delta", delta);
  json.add("fleet_results_identical", identical ? 1.0 : 0.0);
}

}  // namespace

int main() {
  iw::bench::print_header(
      "Batched vs per-sample NN inference (bit-exact engines)");
  iw::bench::JsonReport json("BENCH_nn_batch_throughput.json");
  json.add("cpu_model", iw::hostinfo::cpu_model());
  json.add("cpu_simd_features", iw::hostinfo::cpu_simd_features());
  json.add("simd_tier", iw::simd::tier_name(iw::simd::active_tier()));

  iw::Rng rng_a(42);
  const iw::nn::Network net_a = iw::nn::make_network_a(rng_a);
  bool ok = bench_network("netA", net_a, json);

  iw::Rng rng_b(47);
  const iw::nn::Network net_b = iw::nn::make_network_b(rng_b);
  ok = bench_network("netB", net_b, json) && ok;

  bench_fleet_delta(json);
  json.add("peak_rss_bytes", static_cast<double>(iw::hostinfo::peak_rss_bytes()));
  json.write();
  return ok ? 0 : 1;
}
