// Host-side simulator throughput: simulated MIPS (millions of simulated
// instructions per wall-clock second) for the Table III kernels on all four
// execution targets, in both execution modes — the plain interpreter and the
// superblock-trace engine (rvsim/trace.hpp). This tracks how fast rvsim runs
// on the host — the ceiling on sweeps, ablations, and day-long traces — so
// simulator changes show up in the bench trajectory (BENCH_sim_throughput.json).
//
// The two modes must be bit-identical: every (target, network) pair is run
// once in each mode and the simulated cycles, instruction counts and network
// outputs are cross-checked before any rate is reported. `--smoke` runs only
// that cross-check (one rep per pair, no JSON) for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"
#include "rvsim/trace.hpp"

namespace {

using iw::kernels::Target;

struct Workload {
  std::string name;
  iw::nn::QuantizedNetwork net;
  std::vector<std::int32_t> input;

  Workload(const char* workload_name, const iw::nn::Network& network)
      : name(workload_name), net(iw::nn::QuantizedNetwork::from(network)) {
    std::vector<float> raw(network.num_inputs());
    iw::Rng in_rng(2020);
    for (float& v : raw) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
    input = net.quantize_input(raw);
  }
};

struct Measurement {
  double mips = 0.0;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;        // per-inference simulated cycles
  std::uint64_t instructions = 0;  // per-inference simulated instructions
  int reps = 0;
};

/// Repeats the kernel until enough wall time accumulates to trust the rate.
/// The trace mode applies to the Machines/Clusters the runner constructs.
Measurement measure(const Workload& w, Target target, bool traces) {
  using clock = std::chrono::steady_clock;
  constexpr double kMinWallS = 0.25;
  constexpr int kMaxReps = 400;

  iw::rv::set_default_trace_mode(traces);
  Measurement m;
  // Warm-up run, also the source of the per-inference simulated counts.
  const auto first = iw::kernels::run_fixed_mlp(w.net, w.input, target);
  m.cycles = first.cycles;
  m.instructions = first.instructions;

  std::uint64_t simulated = 0;
  const auto start = clock::now();
  do {
    const auto result = iw::kernels::run_fixed_mlp(w.net, w.input, target);
    simulated += result.instructions;
    ++m.reps;
    m.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  } while (m.wall_s < kMinWallS && m.reps < kMaxReps);
  m.mips = static_cast<double>(simulated) / m.wall_s / 1e6;
  return m;
}

std::string target_key(Target target) {
  switch (target) {
    case Target::kCortexM4: return "cortex_m4";
    case Target::kIbex: return "ibex";
    case Target::kRi5cySingle: return "ri5cy_single";
    case Target::kRi5cyMulti: return "ri5cy_multi8";
  }
  return "?";
}

/// One inference per mode; returns false (and prints why) unless the trace
/// engine reproduced the interpreter bit for bit.
bool check_identity(const Workload& w, Target target) {
  iw::rv::set_default_trace_mode(false);
  const auto interp = iw::kernels::run_fixed_mlp(w.net, w.input, target);
  iw::rv::set_default_trace_mode(true);
  const auto traced = iw::kernels::run_fixed_mlp(w.net, w.input, target);

  bool ok = interp.cycles == traced.cycles &&
            interp.instructions == traced.instructions &&
            interp.outputs_fixed == traced.outputs_fixed;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL %s/%s: interp cycles=%llu instrs=%llu vs trace "
                 "cycles=%llu instrs=%llu%s\n",
                 target_key(target).c_str(), w.name.c_str(),
                 static_cast<unsigned long long>(interp.cycles),
                 static_cast<unsigned long long>(interp.instructions),
                 static_cast<unsigned long long>(traced.cycles),
                 static_cast<unsigned long long>(traced.instructions),
                 interp.outputs_fixed == traced.outputs_fixed
                     ? ""
                     : " (outputs differ)");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  iw::Rng rng_a(1);
  iw::Rng rng_b(2);
  const Workload workloads[] = {
      Workload("network_a", iw::nn::make_network_a(rng_a)),
      Workload("network_b", iw::nn::make_network_b(rng_b)),
  };
  const Target targets[] = {Target::kCortexM4, Target::kIbex,
                            Target::kRi5cySingle, Target::kRi5cyMulti};

  // Interpreter-vs-trace bit-identity gate: cheap, and it keeps the speedup
  // numbers honest — a fast trace engine that drifts from the interpreter's
  // cycle accounting would invalidate every table built on top of it.
  bool identical = true;
  for (const Target target : targets) {
    for (const Workload& w : workloads) {
      identical = check_identity(w, target) && identical;
    }
  }
  if (!identical) {
    std::fprintf(stderr, "bench_sim_throughput: trace/interp divergence\n");
    return 1;
  }
  if (smoke) {
    std::printf("bench_sim_throughput --smoke: trace engine bit-identical to "
                "interpreter on all %zu target/network pairs\n",
                std::size(targets) * std::size(workloads));
    return 0;
  }

  iw::bench::print_header("Simulator host throughput (simulated MIPS)");
  std::printf("%-34s %-10s %12s %12s %8s %14s %14s\n", "target", "network",
              "interp MIPS", "trace MIPS", "speedup", "cycles/inf",
              "instrs/inf");

  iw::bench::JsonReport json("BENCH_sim_throughput.json");
  for (const Target target : targets) {
    for (const Workload& w : workloads) {
      const Measurement interp = measure(w, target, false);
      const Measurement traced = measure(w, target, true);
      const double speedup = traced.mips / interp.mips;
      std::printf("%-34s %-10s %12.2f %12.2f %7.2fx %14llu %14llu\n",
                  iw::kernels::target_name(target).c_str(), w.name.c_str(),
                  interp.mips, traced.mips, speedup,
                  static_cast<unsigned long long>(interp.cycles),
                  static_cast<unsigned long long>(interp.instructions));
      const std::string key = target_key(target) + "." + w.name;
      json.add(key + ".interp.mips", interp.mips);
      json.add(key + ".trace.mips", traced.mips);
      json.add(key + ".trace.speedup", speedup);
      json.add(key + ".cycles", static_cast<double>(interp.cycles));
      json.add(key + ".instructions", static_cast<double>(interp.instructions));
    }
  }
  json.write();
  return 0;
}
