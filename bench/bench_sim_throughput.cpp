// Host-side interpreter throughput: simulated MIPS (millions of simulated
// instructions per wall-clock second) for the Table III kernels on all four
// execution targets. This tracks how fast the rvsim interpreter itself runs
// on the host — the ceiling on sweeps, ablations, and day-long traces — so
// interpreter changes show up in the bench trajectory (BENCH_sim_throughput.json).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "../bench/report.hpp"
#include "common/rng.hpp"
#include "kernels/runner.hpp"
#include "nn/presets.hpp"
#include "nn/quantize.hpp"

namespace {

using iw::kernels::Target;

struct Workload {
  std::string name;
  iw::nn::QuantizedNetwork net;
  std::vector<std::int32_t> input;

  Workload(const char* workload_name, const iw::nn::Network& network)
      : name(workload_name), net(iw::nn::QuantizedNetwork::from(network)) {
    std::vector<float> raw(network.num_inputs());
    iw::Rng in_rng(2020);
    for (float& v : raw) v = static_cast<float>(in_rng.uniform(-1.0, 1.0));
    input = net.quantize_input(raw);
  }
};

struct Measurement {
  double mips = 0.0;
  double wall_s = 0.0;
  std::uint64_t cycles = 0;        // per-inference simulated cycles
  std::uint64_t instructions = 0;  // per-inference simulated instructions
  int reps = 0;
};

/// Repeats the kernel until enough wall time accumulates to trust the rate.
Measurement measure(const Workload& w, Target target) {
  using clock = std::chrono::steady_clock;
  constexpr double kMinWallS = 0.25;
  constexpr int kMaxReps = 400;

  Measurement m;
  // Warm-up run, also the source of the per-inference simulated counts.
  const auto first = iw::kernels::run_fixed_mlp(w.net, w.input, target);
  m.cycles = first.cycles;
  m.instructions = first.instructions;

  std::uint64_t simulated = 0;
  const auto start = clock::now();
  do {
    const auto result = iw::kernels::run_fixed_mlp(w.net, w.input, target);
    simulated += result.instructions;
    ++m.reps;
    m.wall_s = std::chrono::duration<double>(clock::now() - start).count();
  } while (m.wall_s < kMinWallS && m.reps < kMaxReps);
  m.mips = static_cast<double>(simulated) / m.wall_s / 1e6;
  return m;
}

std::string target_key(Target target) {
  switch (target) {
    case Target::kCortexM4: return "cortex_m4";
    case Target::kIbex: return "ibex";
    case Target::kRi5cySingle: return "ri5cy_single";
    case Target::kRi5cyMulti: return "ri5cy_multi8";
  }
  return "?";
}

}  // namespace

int main() {
  iw::bench::print_header("Interpreter host throughput (simulated MIPS)");
  std::printf("%-34s %-10s %12s %14s %14s %6s\n", "target", "network",
              "host MIPS", "cycles/inf", "instrs/inf", "reps");

  iw::Rng rng_a(1);
  iw::Rng rng_b(2);
  const Workload workloads[] = {
      Workload("network_a", iw::nn::make_network_a(rng_a)),
      Workload("network_b", iw::nn::make_network_b(rng_b)),
  };
  const Target targets[] = {Target::kCortexM4, Target::kIbex,
                            Target::kRi5cySingle, Target::kRi5cyMulti};

  iw::bench::JsonReport json("BENCH_sim_throughput.json");
  for (const Target target : targets) {
    for (const Workload& w : workloads) {
      const Measurement m = measure(w, target);
      std::printf("%-34s %-10s %12.2f %14llu %14llu %6d\n",
                  iw::kernels::target_name(target).c_str(), w.name.c_str(),
                  m.mips, static_cast<unsigned long long>(m.cycles),
                  static_cast<unsigned long long>(m.instructions), m.reps);
      const std::string key = target_key(target) + "." + w.name;
      json.add(key + ".mips", m.mips);
      json.add(key + ".cycles", static_cast<double>(m.cycles));
      json.add(key + ".instructions", static_cast<double>(m.instructions));
    }
  }
  json.write();
  return 0;
}
