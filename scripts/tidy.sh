#!/usr/bin/env bash
# clang-tidy runner over the first-party sources (config in .clang-tidy).
#
# Usage: scripts/tidy.sh [extra clang-tidy args...]
#
# Uses the compile_commands.json from ./build (configured automatically when
# missing). Gated on clang-tidy availability: containers that ship only the
# gcc toolchain skip with a note instead of failing, so check.sh can call
# this unconditionally.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not installed; skipping (config kept in .clang-tidy)"
  exit 0
fi

if [ ! -f build/compile_commands.json ]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(find src tools -name '*.cpp' | sort)
echo "tidy.sh: linting ${#sources[@]} files"
clang-tidy -p build --quiet "$@" "${sources[@]}"
echo "tidy.sh: clean"
