#!/usr/bin/env bash
# Pre-PR gate: the tier-1 test suite, the iw_lint static-analysis matrix
# over every assembled reference kernel, the iw_lint --wcet certification
# gate (floor <= dynamic <= ceiling for every kernel), a determinism grep
# over shipped sources, the trace/interpreter bit-identity
# smoke, the fleet SIMD-tier bit-identity smoke (plus a portable
# -DIW_SIMD=OFF build whose smoke digest must match the SIMD build's — the
# cross-build half of the bit-exactness contract), an
# UndefinedBehaviorSanitizer pass over the platform/fleet suites, the
# SIMD parity suites and the superblock-trace suite (the fast-path day
# kernel, per-worker scratch reuse, the intrinsic packs and the
# direct-threaded trace executor are where a stale-pointer or aliasing bug
# would live), a ThreadSanitizer pass over the concurrent fleet/platform
# layers, and clang-tidy when available.
#
# Usage: scripts/check.sh            # from the repository root
#
# Build trees: ./build (plain, reused if present), ./build-nosimd
# (IW_SIMD=OFF), ./build-ubsan (IW_SANITIZE=undefined) and ./build-tsan
# (IW_SANITIZE=thread). All are incremental across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 gate (plain build) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j "$(nproc)"

echo
echo "== iw_lint (static analysis of every reference kernel, all profiles) =="
./build/tools/iw_lint --kernels

echo
echo "== iw_lint --wcet (static energy certification of the kernel suite) =="
./build/tools/iw_lint --wcet
if ! ./build/tools/iw_lint --wcet --json | grep -q '"all_sound":true'; then
  echo "FAIL: iw_lint --wcet --json did not report all_sound:true"
  exit 1
fi

echo
echo "== determinism lint (no wall-clock or libc randomness in src/tools) =="
# The whole repo is replay-deterministic by contract (fleet checkpoints,
# cohort bit-exactness, pinned Table III cycle counts); these sources of
# nondeterminism must never appear in shipped code. Tests may use them.
if grep -rn --include='*.cpp' --include='*.hpp' \
    -e 'std::rand\b' -e 'time(nullptr)' -e 'time(NULL)' \
    -e 'std::random_device' -e 'system_clock' \
    src/ tools/ bench/ 2>/dev/null; then
  echo "FAIL: nondeterministic time/randomness source in shipped code"
  exit 1
fi
# Iterating an unordered container in the fleet merge/stats paths would make
# merged statistics order-dependent; the deterministic layers use ordered
# containers only.
if grep -rn --include='*.cpp' --include='*.hpp' 'std::unordered_' \
    src/fleet src/platform 2>/dev/null; then
  echo "FAIL: unordered container in a determinism-critical layer"
  exit 1
fi
echo "determinism lint clean"

echo
echo "== iw_fleetd smoke (longitudinal determinism self-check) =="
./build/tools/iw_fleetd --smoke

echo
echo "== trace engine smoke (interpreter bit-identity on all targets) =="
./build/bench/bench_sim_throughput --smoke

echo
echo "== fleet SIMD smoke (every day path and dispatch tier, one build) =="
./build/bench/bench_fleet_throughput --smoke | tee /tmp/iw_smoke_simd.txt

echo
echo "== portable build (-DIW_SIMD=OFF) must reproduce the same bytes =="
cmake -B build-nosimd -S . -DIW_SIMD=OFF >/dev/null
cmake --build build-nosimd -j "$(nproc)" --target bench_fleet_throughput
./build-nosimd/bench/bench_fleet_throughput --smoke | tee /tmp/iw_smoke_nosimd.txt
digest_simd=$(grep -o 'smoke digest: [0-9a-f]*' /tmp/iw_smoke_simd.txt)
digest_nosimd=$(grep -o 'smoke digest: [0-9a-f]*' /tmp/iw_smoke_nosimd.txt)
if [ "$digest_simd" != "$digest_nosimd" ]; then
  echo "FAIL: SIMD and portable builds disagree ($digest_simd vs $digest_nosimd)"
  exit 1
fi
echo "portable build matches SIMD build ($digest_simd)"

echo
echo "== clang-tidy (skipped automatically when not installed) =="
scripts/tidy.sh

echo
echo "== UBSan pass (platform + fleet + trace suites) =="
cmake -B build-ubsan -S . -DIW_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$(nproc)" \
  --target test_platform test_fast_day test_cohort_day test_cohort_simd \
  test_fleet test_fleet_cohort test_fleet_simd test_fleet_long test_trace \
  test_analysis test_wcet_fuzz
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_analysis
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_wcet_fuzz
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_trace
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_platform
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fast_day
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_cohort_day
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_cohort_simd
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fleet
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fleet_cohort
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fleet_simd
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fleet_long
echo
echo "== TSan pass (fleet + platform suites) =="
cmake -B build-tsan -S . -DIW_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$(nproc)" \
  --target test_platform test_fast_day test_cohort_day test_cohort_simd \
  test_fleet test_fleet_cohort test_fleet_simd test_fleet_long
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_fleet
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_fleet_cohort
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_fleet_simd
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_fleet_long
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_cohort_simd
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_platform
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_fast_day
TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
  ./build-tsan/tests/test_cohort_day

echo
echo "check.sh: all green"
