#!/usr/bin/env bash
# Pre-PR gate: the tier-1 test suite plus an UndefinedBehaviorSanitizer pass
# over the platform/fleet suites (the ones exercising the fast-path day
# kernel and the per-worker scratch reuse, where a stale-pointer or
# aliasing bug would live).
#
# Usage: scripts/check.sh            # from the repository root
#
# Build trees: ./build (plain, reused if present) and ./build-ubsan
# (IW_SANITIZE=undefined). Both are incremental across runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 gate (plain build) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -L tier1 --output-on-failure -j "$(nproc)"

echo
echo "== UBSan pass (platform + fleet suites) =="
cmake -B build-ubsan -S . -DIW_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$(nproc)" \
  --target test_platform test_fast_day test_fleet
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_platform
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fast_day
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ./build-ubsan/tests/test_fleet

echo
echo "check.sh: all green"
